"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``calibrate`` — probe a testbed's devices and print the Table-I bundle;
- ``plan`` — run the Analysis Phase on a trace CSV and emit the RST JSON;
- ``run-ior`` — simulate IOR under a chosen layout and print throughput;
  ``--faults SPEC`` injects scripted faults (including ``corrupt:`` data
  corruption and ``mds-crash:`` metadata-shard crashes) with client
  retry/failover; ``--replicas N`` mirrors every region N ways so
  corrupted reads self-heal; ``--mds-shards N`` shards the metadata
  namespace across a consistent-hash ring of N journaled servers;
  ``--mds-cache`` turns on the client-side layout cache and
  ``--mds-profile`` selects calibrated MDS service-time costs;
  ``--rebuild`` re-replicates crashed servers' regions onto survivors
  (``--rebuild-duty-cycle`` throttles it) and ``--write-quorum K`` acks
  writes at K durable copies with trailing mirrors asynchronous;
- ``chaos`` — sweep stochastic fault rates, comparing HARL against a
  fixed-stripe baseline under identical fault schedules;
  ``--corrupt-rate`` folds silent data corruption into the sweep;
  ``--mds-crash-rate`` (with ``--mds-shards``) folds metadata-shard
  crashes in and gates on zero lost namespace entries; ``--replicas``
  with ``--rebuild`` re-replicates after crashes (``--restore-after``
  rejoins crashed servers) and gates the sweep on zero data loss;
- ``mds-bench`` — open-storm MDS contention on the experiments fabric:
  makespan and lookup ops/s vs. shard count × client-cache on/off,
  linear-ring vs. finger-table routing side by side (``--jobs`` fans the
  sweep out, ``--output`` archives the report);
- ``serve`` — multi-tenant QoS serving front end: tiered tenants
  (bronze/silver/gold) with token-bucket admission control, weighted fair
  queueing at the disk stage, and straggler-aware hedged reads;
  ``--compare-hedging`` A/Bs the tail, ``--assert-p99 gold<bronze``
  gates tier ordering for CI;
- ``scrub`` — write a file under corruption faults, then run a background
  scrub sweep and report what it detected and repaired;
- ``trace`` — run IOR with DES event tracing; export a Chrome trace;
- ``analyze`` — summarize an IOSIG trace CSV;
- ``replay`` — replay a trace CSV under a layout;
- ``run-figure`` — regenerate one paper figure and print its table;
- ``run-all`` — regenerate every figure into one reproduction report
  (exits non-zero if any shape check fails);
- ``list-figures`` — enumerate the reproducible figures.

Every command is pure-offline (simulated cluster); sizes accept suffixes
(``512K``, ``32M``).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

from repro.core.planner import HARLPlanner
from repro.experiments import figures
from repro.experiments.harness import Testbed, harl_plan, run_workload, run_workload_batched
from repro.faults import FaultSchedule, FaultSpecError, RetryPolicy, parse_faults
from repro.obs import (
    record_plan_report,
    straggler_summary,
    write_chrome_trace,
    write_spans_csv,
)
from repro.online import DataLossError, RebuildConfig
from repro.pfs.integrity import IntegrityError
from repro.pfs.layout import FixedLayout, RandomLayout, RegionLevelLayout
from repro.util.units import KiB, format_size, parse_size
from repro.workloads.ior import IORConfig, IORWorkload
from repro.workloads.traces import TraceFile, sort_trace

#: Figure name → (callable, kwargs) registry for ``run-figure``.
FIGURES = {
    "fig1a": (figures.fig1a, {}),
    "fig1b": (figures.fig1b, {}),
    "fig6": (figures.fig6, {}),
    "fig7": (figures.fig7, {}),
    "fig8": (figures.fig8, {}),
    "fig9": (figures.fig9, {}),
    "fig10": (figures.fig10, {}),
    "fig11": (figures.fig11, {}),
    "fig12": (figures.fig12, {}),
    "mds-contention": (figures.fig_mds_contention, {}),
    "rebuild": (figures.fig_rebuild, {}),
}


def _add_testbed_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--hservers", type=int, default=6, help="HDD server count (default 6)")
    parser.add_argument("--sservers", type=int, default=2, help="SSD server count (default 2)")
    parser.add_argument("--seed", type=int, default=0, help="testbed RNG seed")


def _add_mds_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mds-shards",
        type=int,
        default=0,
        metavar="N",
        help="shard the metadata namespace across N journaled servers on a "
        "consistent-hash ring (default 0 = single legacy MDS)",
    )
    parser.add_argument(
        "--mds-routing",
        choices=("finger", "linear"),
        default="finger",
        help="ring routing: 'finger' = O(log N) finger-table jumps, "
        "'linear' = successor walk (default finger)",
    )
    parser.add_argument(
        "--mds-recovery-delay",
        default="2e-3",
        metavar="SECONDS",
        help="crash-to-journal-replay delay for mds-crash faults; 'none' "
        "disables recovery and leaves the arc degraded (default 2e-3)",
    )
    parser.add_argument(
        "--mds-cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="client-side layout cache: coalesced lookups, lease "
        "invalidation on relayout/failover (default off)",
    )
    parser.add_argument(
        "--mds-profile",
        default=None,
        metavar="SPEC",
        help="MDS service-time profile: 'legacy', 'calibrated', or "
        "'calibrated,open=1.2e-4,stat=6e-5,relayout=4.8e-4,level=8e-6' "
        "(default: legacy constants)",
    )


def _mds_testbed_kwargs(args: argparse.Namespace) -> dict:
    """Validated ``Testbed`` metadata kwargs from ``--mds-*`` flags.

    Raises ``ValueError`` with a user-facing message for a negative shard
    count or an unparseable recovery delay — commands turn that into a
    clean exit-2 error instead of a mid-run traceback.
    """
    shards = getattr(args, "mds_shards", 0)
    if shards < 0:
        raise ValueError(f"--mds-shards must be >= 0, got {shards}")
    raw = getattr(args, "mds_recovery_delay", "2e-3")
    if isinstance(raw, str) and raw.strip().lower() in ("none", "off"):
        delay: float | None = None
    else:
        try:
            delay = float(raw)
        except ValueError:
            raise ValueError(
                f"invalid --mds-recovery-delay {raw!r}: expected seconds or 'none'"
            ) from None
        if delay < 0:
            raise ValueError(f"--mds-recovery-delay must be >= 0, got {raw}")
    profile = getattr(args, "mds_profile", None)
    if profile is not None:
        from repro.devices.profiles import MdsProfile

        try:
            MdsProfile.parse(profile)
        except ValueError as exc:
            raise ValueError(f"invalid --mds-profile {profile!r}: {exc}") from None
    return {
        "mds_shards": shards,
        "mds_routing": getattr(args, "mds_routing", "finger"),
        "mds_recovery_delay": delay,
        "mds_profile": profile,
        "mds_cache": bool(getattr(args, "mds_cache", False)),
    }


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent simulation points "
        "(default: $REPRO_JOBS or serial; 0 = all cores)",
    )


def _add_ior_args(parser: argparse.ArgumentParser, layout: bool = True) -> None:
    parser.add_argument("--op", choices=("read", "write"), default="write")
    parser.add_argument("--processes", type=int, default=16)
    parser.add_argument("--request-size", default="512K")
    parser.add_argument("--file-size", default="32M")
    parser.add_argument("--segments", type=int, default=1, help="IOR segmentCount (interleaved blocks)")
    parser.add_argument("--queue-depth", type=int, default=1, help="outstanding requests per rank")
    parser.add_argument("--sequential", action="store_true", help="in-order offsets (default: random)")
    if layout:
        parser.add_argument(
            "--layout",
            default="harl",
            help="'harl', a fixed stripe size ('64K'), 'random', or 'rand<seed>'",
        )


def _testbed(args: argparse.Namespace) -> Testbed:
    return Testbed(
        n_hservers=args.hservers,
        n_sservers=args.sservers,
        seed=args.seed,
        **_mds_testbed_kwargs(args),
    )


def _ior_workload(args: argparse.Namespace) -> IORWorkload:
    return IORWorkload(
        IORConfig(
            n_processes=args.processes,
            request_size=parse_size(args.request_size),
            file_size=parse_size(args.file_size),
            op=args.op,
            random_offsets=not args.sequential,
            segments=args.segments,
            queue_depth=args.queue_depth,
        )
    )


class LayoutSpecError(ValueError):
    """A ``--layout`` value that names no known layout family."""


#: 'random' and 'rand' select seed 1; 'rand<N>' selects seed N.
_RANDOM_LAYOUT_RE = re.compile(r"^rand(?:om)?([0-9]+)?$")


def _resolve_layout(args: argparse.Namespace, testbed: Testbed, workload, report_sink=None):
    """Turn ``args.layout`` into ``(layout, label, is_harl)``.

    Raises :class:`LayoutSpecError` with a user-facing message for values
    that are neither ``harl``, a random spec, nor a parseable stripe size —
    commands turn that into a clean exit-2 error instead of a traceback.
    ``--replicas N`` (when the command defines it) mirrors every region N
    ways; N < 1 and unsupported layout families also exit cleanly.
    """
    replicas = getattr(args, "replicas", 1)
    if replicas < 1:
        raise LayoutSpecError(f"--replicas must be >= 1, got {replicas}")
    name = args.layout.lower()
    if name == "harl":
        rst = harl_plan(testbed, workload, report_sink=report_sink)
        if replicas > 1:
            layout = RegionLevelLayout(rst, replicas=replicas)
            return layout, f"HARL+r{replicas}", True
        return rst, "HARL", True
    match = _RANDOM_LAYOUT_RE.match(name)
    if match is not None:
        if replicas > 1:
            raise LayoutSpecError("--replicas is not supported with random layouts")
        seed = int(match.group(1)) if match.group(1) is not None else 1
        layout = RandomLayout(args.hservers, args.sservers, seed=seed)
        return layout, layout.describe(), False
    try:
        stripe = parse_size(args.layout)
    except ValueError:
        raise LayoutSpecError(
            f"invalid --layout {args.layout!r}: expected 'harl', 'random', "
            f"'rand<seed>', or a stripe size like '64K'"
        ) from None
    layout = FixedLayout(args.hservers, args.sservers, stripe, replicas=replicas)
    label = format_size(stripe) if replicas == 1 else f"{format_size(stripe)}+r{replicas}"
    return layout, label, False


def cmd_calibrate(args: argparse.Namespace) -> int:
    testbed = _testbed(args)
    hint = parse_size(args.request_hint) if args.request_hint else None
    params = testbed.parameters(request_hint=hint, jobs=args.jobs)
    print(params.describe())
    for label, profile in (("HServer", params.hserver), ("SServer", params.sserver)):
        print(
            f"{label}: read alpha [{profile.read_alpha_min:.3g}, {profile.read_alpha_max:.3g}] s, "
            f"beta {profile.beta_read:.3g} s/B; "
            f"write alpha [{profile.write_alpha_min:.3g}, {profile.write_alpha_max:.3g}] s, "
            f"beta {profile.beta_write:.3g} s/B"
        )
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    trace = TraceFile.load(args.trace)
    if not trace:
        print("error: trace is empty", file=sys.stderr)
        return 2
    testbed = _testbed(args)
    mean = int(sum(r.size for r in trace) / len(trace))
    planner = HARLPlanner(
        testbed.parameters(request_hint=mean),
        step=parse_size(args.step) if args.step else None,
    )
    rst = planner.plan(sort_trace(trace))
    print(rst.describe_table())
    if planner.last_report is not None:
        print()
        print(planner.last_report.summary())
    if args.output:
        rst.save(args.output)
        print(f"\nRST written to {args.output}")
    return 0


def _fault_stats_line(stats) -> str:
    return (
        f"faults: {stats.crashes} crashes, {stats.hangs} hangs, "
        f"{stats.degrades} degrades, {stats.blips} blips, "
        f"{stats.corruptions} corruptions | recovery: "
        f"{stats.retries} retries, {stats.timeouts} timeouts, "
        f"{stats.rerouted_subrequests} rerouted subrequests, "
        f"{stats.exhausted} exhausted"
    )


def _integrity_line(stats) -> str:
    return (
        f"integrity: {stats.units_poisoned} units poisoned, {stats.checks} checks, "
        f"{stats.mismatches} mismatches, {stats.repaired} repaired, "
        f"{stats.unrepairable} unrepairable, {stats.silent_corruptions} silent"
    )


def _mds_stats_line(stats) -> str:
    line = (
        f"mds: {stats.n_shards} shards ({stats.routing}), {stats.lookups} lookups, "
        f"mean {stats.mean_hops:.2f} hops (max {stats.hops_max})"
    )
    if stats.crashes or stats.retries or stats.unavailable:
        line += (
            f" | {stats.crashes} crashes, {stats.recoveries} recoveries, "
            f"{stats.records_replayed} records replayed, "
            f"{stats.entries_handed_off} entries handed off, "
            f"{stats.retries} retries, {stats.lost_entries} lost"
        )
    return line


def _durability_line(stats) -> str:
    line = (
        f"durability: {stats.placements_rebuilt} placements rebuilt "
        f"({format_size(stats.bytes_rebuilt)}), "
        f"at-risk peak {format_size(stats.at_risk_bytes_peak)}, "
        f"exposure {stats.exposure_seconds:.4f}s"
    )
    if stats.mttr_samples:
        line += f", MTTR mean {stats.mttr_mean:.4f}s (max {stats.mttr_max:.4f}s)"
    if stats.data_loss_events:
        line += (
            f" | {stats.data_loss_events} loss events "
            f"({format_size(stats.data_lost_bytes)} lost)"
        )
    return line


def _quorum_line(stats) -> str:
    return (
        f"quorum: {stats.quorum_acks} early acks, "
        f"{stats.trailing_mirrors} trailing mirrors, "
        f"{stats.quorum_window_failures} window failures"
    )


def cmd_run_ior(args: argparse.Namespace) -> int:
    try:
        testbed = _testbed(args)
        workload = _ior_workload(args)
        layout, label, is_harl = _resolve_layout(args, testbed, workload)
        faults = parse_faults(args.faults) if args.faults else None
        if faults is not None and faults.mds_crashes() and testbed.mds_shards < 1:
            raise FaultSpecError(
                "mds-crash faults require a sharded metadata cluster "
                "(run with --mds-shards >= 1)"
            )
        if args.rebuild and args.replicas < 2:
            raise FaultSpecError(
                "--rebuild needs a surviving copy to rebuild from "
                "(run with --replicas >= 2)"
            )
        if not 0.0 < args.rebuild_duty_cycle <= 1.0:
            raise FaultSpecError(
                f"--rebuild-duty-cycle must be in (0, 1], got {args.rebuild_duty_cycle}"
            )
        if args.write_quorum is not None and args.write_quorum < 1:
            raise FaultSpecError(
                f"--write-quorum must be >= 1, got {args.write_quorum}"
            )
    except (LayoutSpecError, FaultSpecError, ValueError) as exc:
        # Bad --layout/--faults/--mds-* specs and inconsistent IOR geometry
        # (file size not a whole number of requests/processes) exit cleanly.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Faults imply a retry policy: without one a crashed server would turn
    # every in-flight sub-request into a hard failure instead of a failover.
    retry = RetryPolicy(seed=args.seed) if faults is not None else None
    rebuild = RebuildConfig(duty_cycle=args.rebuild_duty_cycle) if args.rebuild else None
    trace_out = getattr(args, "trace_out", None)
    try:
        result = run_workload(
            testbed,
            workload,
            layout,
            layout_name=label,
            trace=True if trace_out else None,
            faults=faults,
            retry=retry,
            rebuild=rebuild,
            write_quorum=args.write_quorum,
        )
    except DataLossError as exc:
        print(f"error: data loss: {exc}", file=sys.stderr)
        return 1
    except FaultSpecError as exc:
        # Unknown server names surface when the schedule binds to the PFS.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except IntegrityError as exc:
        # A corrupted read with no replica to heal from surfaces as a typed
        # error, never as silently wrong data.
        print(f"error: unrepairable data corruption: {exc}", file=sys.stderr)
        print("hint: rerun with --replicas 2 to enable read-path repair", file=sys.stderr)
        return 1
    config = workload.config
    print(
        f"IOR {config.op.value}, {config.n_processes} procs, "
        f"{format_size(config.request_size)} requests, "
        f"{format_size(config.file_size)} file, layout {label}:"
    )
    print(f"  {result.throughput_mib:.1f} MiB/s (makespan {result.makespan:.4f}s)")
    if result.faults is not None:
        print(f"  {_fault_stats_line(result.faults)}")
    if result.integrity is not None:
        print(f"  {_integrity_line(result.integrity)}")
    if result.durability is not None and args.rebuild:
        print(f"  {_durability_line(result.durability)}")
    if result.durability is not None and args.write_quorum is not None:
        print(f"  {_quorum_line(result.durability)}")
    if result.mds is not None:
        print(f"  {_mds_stats_line(result.mds)}")
    if is_harl:
        rst = getattr(layout, "rst", layout)  # --replicas wraps the RST
        plan = ", ".join(entry.config.describe() for entry in rst.entries)
        print(f"  plan: {plan}")
    if result.obs is not None and trace_out:
        write_chrome_trace(trace_out, result.obs)
        print(f"\nChrome trace ({result.obs.n_spans} spans) written to {trace_out}")
        print(straggler_summary(result.obs))
    if result.mds is not None and result.mds.failed:
        print(
            "error: metadata shard unavailable after retries; run aborted "
            "in degraded mode (enable recovery with --mds-recovery-delay)",
            file=sys.stderr,
        )
        return 1
    if result.durability is not None and result.durability.data_lost_bytes > 0:
        print(
            f"error: {format_size(result.durability.data_lost_bytes)} of "
            "written data lost every replica before rebuild could copy it",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Sweep stochastic fault rates; report slowdown for HARL vs baseline.

    Every layout at a given rate sees the *same* seeded fault schedule, so
    throughput differences are layout-induced, not fault-schedule luck.
    """
    from repro.experiments.parallel import RunJob, run_jobs

    try:
        testbed = _testbed(args)
        workload = _ior_workload(args)
        rates = [float(token) for token in args.rates.split(",") if token.strip()]
        if not rates:
            raise FaultSpecError("--rates must list at least one fault rate")
        if any(rate < 0 for rate in rates):
            raise FaultSpecError("--rates entries must be >= 0")
        if args.corrupt_rate < 0:
            raise FaultSpecError("--corrupt-rate must be >= 0")
        if args.mds_crash_rate < 0:
            raise FaultSpecError("--mds-crash-rate must be >= 0")
        if args.mds_crash_rate > 0 and testbed.mds_shards < 1:
            raise FaultSpecError("--mds-crash-rate requires --mds-shards >= 1")
        if args.replicas < 1:
            raise FaultSpecError(f"--replicas must be >= 1, got {args.replicas}")
        if args.rebuild and args.replicas < 2:
            raise FaultSpecError(
                "--rebuild needs a surviving copy to rebuild from "
                "(run with --replicas >= 2)"
            )
        if not 0.0 < args.rebuild_duty_cycle <= 1.0:
            raise FaultSpecError(
                f"--rebuild-duty-cycle must be in (0, 1], got {args.rebuild_duty_cycle}"
            )
        if args.restore_after is not None and args.restore_after <= 0:
            raise FaultSpecError(
                f"--restore-after must be > 0, got {args.restore_after}"
            )
        harl = harl_plan(testbed, workload)
        harl_name = "HARL"
        if args.replicas > 1:
            harl = RegionLevelLayout(harl, replicas=args.replicas)
            harl_name = f"HARL+r{args.replicas}"
        layouts = {harl_name: harl}
        stripe = parse_size(args.baseline_stripe)
        fixed_name = format_size(stripe)
        if args.replicas > 1:
            fixed_name += f"+r{args.replicas}"
        layouts[fixed_name] = FixedLayout(
            args.hservers, args.sservers, stripe, replicas=args.replicas
        )
    except (FaultSpecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    retry = RetryPolicy(seed=args.seed)
    rebuild = RebuildConfig(duty_cycle=args.rebuild_duty_cycle) if args.rebuild else None
    n_servers = args.hservers + args.sservers
    # Fault-free reference runs set the horizon for random schedules and
    # the denominator of the slowdown column.
    reference = {
        name: run_workload(testbed, workload, layout, layout_name=name)
        for name, layout in layouts.items()
    }
    horizon = max(result.makespan for result in reference.values())
    jobs_list, keys = [], []
    for index, rate in enumerate(rates):
        schedule = FaultSchedule.random(
            seed=args.seed * 1000 + index,
            horizon=horizon,
            n_servers=n_servers,
            crash_rate=rate * 0.5,
            hang_rate=rate,
            degrade_rate=rate,
            blip_rate=rate * 0.5,
            corrupt_rate=rate * args.corrupt_rate,
            mds_crash_rate=rate * args.mds_crash_rate,
            n_mds_shards=testbed.mds_shards or None,
            # With replication in play, random crashes must leave at least
            # one survivor per performance class or rebuild has no targets.
            class_counts=(
                (args.hservers, args.sservers) if args.replicas > 1 else None
            ),
            crash_restore_delay=args.restore_after,
        )
        for name, layout in layouts.items():
            keys.append((rate, name))
            jobs_list.append(
                RunJob(
                    testbed=testbed,
                    workload=workload,
                    layout=layout,
                    layout_name=name,
                    faults=schedule if schedule else None,
                    retry=retry,
                    rebuild=rebuild,
                )
            )
    results = run_jobs(jobs_list, jobs=args.jobs)
    width = max(len(name) for name in layouts) + 2
    with_corruption = args.corrupt_rate > 0
    with_mds = testbed.mds_shards >= 1
    print(
        f"chaos sweep: {len(rates)} rates x {len(layouts)} layouts, seed {args.seed} "
        f"(rate = expected hangs+degrades per run; crashes/blips at half rate)"
    )
    with_rebuild = args.rebuild
    corrupt_header = f" {'corrupt':>7} {'poisoned':>8}" if with_corruption else ""
    mds_header = f" {'mds-crash':>9} {'lost':>5}" if with_mds else ""
    rebuild_header = (
        f" {'data-lost':>9} {'at-risk':>8} {'mttr':>8}" if with_rebuild else ""
    )
    print(
        f"{'rate':>6} {'layout':<{width}} {'MiB/s':>10} {'slowdown':>9}  "
        f"{'injected':>8} {'retries':>7} {'failovers':>9} {'rerouted':>8}"
        f"{corrupt_header}{mds_header}{rebuild_header}"
    )
    lost_total = 0
    data_lost_total = 0
    for (rate, name), result in zip(keys, results):
        base = reference[name].throughput
        slowdown = base / result.throughput if result.throughput > 0 else float("inf")
        stats = result.faults
        injected = stats.total_injected if stats is not None else 0
        retries = stats.retries if stats is not None else 0
        failovers = stats.failovers if stats is not None else 0
        rerouted = stats.rerouted_subrequests if stats is not None else 0
        corrupt_cols = ""
        if with_corruption:
            corruptions = stats.corruptions if stats is not None else 0
            poisoned = result.integrity.units_poisoned if result.integrity is not None else 0
            corrupt_cols = f" {corruptions:>7} {poisoned:>8}"
        mds_cols = ""
        if with_mds:
            mds_crashes = result.mds.crashes if result.mds is not None else 0
            lost = result.mds.lost_entries if result.mds is not None else 0
            if result.mds is not None and result.mds.failed:
                lost = max(lost, 1)  # an aborted run lost its namespace
            lost_total += lost
            mds_cols = f" {mds_crashes:>9} {lost:>5}"
        rebuild_cols = ""
        if with_rebuild:
            dur = result.durability
            lost_bytes = dur.data_lost_bytes if dur is not None else 0
            at_risk = dur.at_risk_bytes_peak if dur is not None else 0
            mttr = (
                f"{dur.mttr_mean:.3f}s"
                if dur is not None and dur.mttr_samples
                else "-"
            )
            data_lost_total += lost_bytes
            rebuild_cols = (
                f" {format_size(lost_bytes):>9} {format_size(at_risk):>8} {mttr:>8}"
            )
        print(
            f"{rate:>6.2f} {name:<{width}} {result.throughput_mib:>10.1f} "
            f"{slowdown:>8.2f}x  {injected:>8} {retries:>7} {failovers:>9} {rerouted:>8}"
            f"{corrupt_cols}{mds_cols}{rebuild_cols}"
        )
    if with_mds:
        verdict = "ok" if lost_total == 0 else "FAIL"
        print(f"mds namespace check: {lost_total} lost entries -> {verdict}")
        if lost_total:
            print(
                "error: metadata entries lost after shard crash recovery",
                file=sys.stderr,
            )
            return 1
    if any(result.cache is not None for result in results):
        stale_total = sum(
            result.cache.stale_hits for result in results if result.cache is not None
        )
        verdict = "ok" if stale_total == 0 else "FAIL"
        print(f"mds cache stale-read audit: {stale_total} stale hits -> {verdict}")
        if stale_total:
            print(
                "error: cached lookups served stale layout generations",
                file=sys.stderr,
            )
            return 1
    if with_rebuild:
        verdict = "ok" if data_lost_total == 0 else "FAIL"
        print(
            f"durability check: {format_size(data_lost_total)} data lost -> {verdict}"
        )
        if data_lost_total:
            print(
                "error: written regions lost every replica before rebuild "
                "could re-replicate them",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_mds_bench(args: argparse.Namespace) -> int:
    """Open-storm metadata bench on the experiments fabric.

    Each point is a :class:`~repro.experiments.parallel.RunJob` replaying a
    :class:`~repro.workloads.metadata.MetadataWorkload` storm as one
    columnar batch (shard count × routing × cache on/off), so the sweep
    fans out under ``--jobs`` and archives with ``--output`` like any
    figure. The uncached rows show owner-shard queueing (one hot file:
    sharding buys hops, not slots); the cached rows show the client
    cache's lookup-throughput recovery.
    """
    try:
        try:
            shard_counts = tuple(
                int(token) for token in args.shards.split(",") if token.strip()
            )
        except ValueError:
            raise ValueError(
                f"invalid --shards {args.shards!r}: expected comma-separated "
                f"shard counts like '1,2,4,8'"
            ) from None
        if not shard_counts:
            raise ValueError("--shards must list at least one shard count")
        if any(count < 1 for count in shard_counts):
            raise ValueError(f"--shards entries must be >= 1, got {args.shards!r}")
        if args.ops < 1:
            raise ValueError(f"--ops must be >= 1, got {args.ops}")
        if args.processes < 1:
            raise ValueError(f"--processes must be >= 1, got {args.processes}")
        if args.ops % args.processes != 0:
            raise ValueError(
                f"--ops ({args.ops}) must divide evenly over --processes "
                f"({args.processes})"
            )
        if args.spread < 0:
            raise ValueError(f"--spread must be >= 0, got {args.spread}")
        if args.assert_speedup is not None and args.assert_speedup <= 0:
            raise ValueError(
                f"--assert-speedup must be > 0, got {args.assert_speedup}"
            )
        profile = args.mds_profile if args.mds_profile is not None else "calibrated"
        from repro.devices.profiles import MdsProfile

        try:
            MdsProfile.parse(profile)
        except ValueError as exc:
            raise ValueError(f"invalid --mds-profile {profile!r}: {exc}") from None
        routings = ("linear", "finger") if args.routing == "both" else (args.routing,)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    blocks = []
    sweeps = []
    for routing in routings:
        result = figures.fig_mds_contention(
            shard_counts=shard_counts,
            routing=routing,
            n_ops=args.ops,
            n_processes=args.processes,
            spread=args.spread,
            profile=profile,
            jobs=args.jobs,
        )
        sweeps.append(result)
        blocks.append(result.render())
    text = "\n\n".join(blocks)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")
    if args.assert_speedup is not None:
        worst, at_shards, at_routing = min(
            (sweep.speedup(count), count, sweep.routing)
            for sweep in sweeps
            for count in shard_counts
        )
        if worst < args.assert_speedup:
            print(
                f"error: cached lookup speedup {worst:.1f}x at {at_shards} "
                f"shards ({at_routing} routing) is below the "
                f"--assert-speedup {args.assert_speedup:g}x gate",
                file=sys.stderr,
            )
            return 1
        print(
            f"cached speedup gate: worst {worst:.1f}x "
            f"({at_shards} shards, {at_routing}) >= {args.assert_speedup:g}x -> ok"
        )
    return 0


def _parse_p99_assert(spec: str) -> tuple[str, str]:
    """``'gold<bronze'`` → ``('gold', 'bronze')`` (faster tier first)."""
    from repro.serving import ServingSpecError

    parts = [token.strip() for token in spec.split("<")]
    if len(parts) != 2 or not all(parts):
        raise ServingSpecError(
            f"--assert-p99 wants 'FASTER_TIER<SLOWER_TIER', got {spec!r}"
        )
    return parts[0], parts[1]


def cmd_serve(args: argparse.Namespace) -> int:
    """Multi-tenant QoS serving: tiers, admission control, WFQ, hedging."""
    from dataclasses import replace

    from repro.experiments.parallel import ServeJob, run_jobs
    from repro.serving import ServingSpecError, make_scenario, parse_tier_config

    testbed = _testbed(args)
    try:
        tier_config = None
        if args.tiers:
            import json

            try:
                tier_config = json.loads(Path(args.tiers).read_text())
            except OSError as exc:
                raise ServingSpecError(f"cannot read --tiers file: {exc}") from exc
            except json.JSONDecodeError as exc:
                raise ServingSpecError(
                    f"--tiers file {args.tiers} is not valid JSON: {exc}"
                ) from exc
        tenants = list(args.tenant)
        if not tenants:
            # Demo default: one closed-loop tenant per tier in the ladder.
            tenants = [f"{name}:{name}" for name in parse_tier_config(tier_config)]
        scenario = make_scenario(
            tenants,
            tier_config=tier_config,
            duration=args.duration,
            seed=args.seed,
            hedging=not args.no_hedging,
            fair_share=not args.no_fair_share,
            stripe=parse_size(args.stripe),
        )
        faults = parse_faults(args.faults) if args.faults else None
        if args.chaos:
            if args.chaos < 0:
                raise FaultSpecError(f"--chaos must be >= 0, got {args.chaos}")
            # Degrade-heavy mix: stragglers, not outages, are what hedging
            # and tier weights are meant to absorb.
            chaos = FaultSchedule.random(
                seed=args.seed + 7919,
                horizon=scenario.duration,
                n_servers=args.hservers + args.sservers,
                degrade_rate=args.chaos,
                blip_rate=args.chaos * 0.5,
                hang_rate=args.chaos * 0.25,
            )
            faults = FaultSchedule(events=faults.events + chaos.events) if faults else chaos
        asserts = [_parse_p99_assert(spec) for spec in args.assert_p99]
    except (ServingSpecError, FaultSpecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    retry = RetryPolicy(seed=args.seed) if faults is not None else None
    jobs_list = [ServeJob(testbed=testbed, scenario=scenario, faults=faults, retry=retry)]
    if args.compare_hedging:
        jobs_list.append(
            ServeJob(
                testbed=testbed,
                scenario=replace(scenario, hedging=False),
                faults=faults,
                retry=retry,
            )
        )
    try:
        results = run_jobs(jobs_list, jobs=args.jobs)
    except FaultSpecError as exc:
        # Unknown server names surface when the schedule binds to the PFS.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = results[0]
    serving = result.serving
    fault_note = f", {len(faults)} fault events" if faults else ""
    print(
        f"serving: {len(serving.tenants)} tenants over "
        f"{args.hservers}h+{args.sservers}s, {scenario.duration:g}s window, "
        f"seed {args.seed}{fault_note}"
    )
    print(serving.render())
    if result.faults is not None:
        print(_fault_stats_line(result.faults))
    if result.integrity is not None:
        print(_integrity_line(result.integrity))
    if args.compare_hedging:
        baseline = results[1].serving
        print("\nhedging off (same seed, same faults):")
        print(baseline.render())
        for tier in sorted({t.tier for t in serving.tenants}):
            on = serving.tier_quantile(tier, 0.99)
            off = baseline.tier_quantile(tier, 0.99)
            cut = (1.0 - on / off) * 100.0 if off > 0 else 0.0
            print(
                f"  {tier}: p99 {on * 1e3:.2f}ms hedged vs "
                f"{off * 1e3:.2f}ms unhedged ({cut:+.1f}% tail cut)"
            )
    failed = False
    for faster, slower in asserts:
        try:
            left = serving.tier_quantile(faster, 0.99)
            right = serving.tier_quantile(slower, 0.99)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        ok = left < right
        print(
            f"assert p99[{faster}] < p99[{slower}]: "
            f"{left * 1e3:.2f}ms < {right * 1e3:.2f}ms -> {'ok' if ok else 'FAIL'}"
        )
        failed = failed or not ok
    return 1 if failed else 0


def cmd_scrub(args: argparse.Namespace) -> int:
    """Write under corruption faults, then scrub and report the repairs.

    Runs an IOR write on a (by default replicated) layout while a
    ``corrupt:`` fault schedule poisons stored stripe units, then sweeps the
    whole namespace with a :class:`~repro.online.scrub.Scrubber`. Exits 1 if
    any corruption went silent (detected but neither repaired nor reported)
    — the invariant the integrity layer guarantees never happens.
    """
    from repro.faults.injector import FaultInjector
    from repro.middleware.mpi_sim import SimMPI
    from repro.middleware.mpiio import MPIIOFile
    from repro.online.scrub import Scrubber
    from repro.simulate.engine import Simulator

    testbed = _testbed(args)
    try:
        workload = _ior_workload(args)
        layout, label, _ = _resolve_layout(args, testbed, workload)
        faults = parse_faults(args.faults) if args.faults else None
        chunk_size = parse_size(args.chunk_size)
        if chunk_size < 1:
            raise ValueError(f"--chunk-size must be >= 1, got {args.chunk_size}")
        if not (0 < args.duty_cycle <= 1):
            raise ValueError(f"--duty-cycle must be in (0, 1], got {args.duty_cycle}")
    except (LayoutSpecError, FaultSpecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    sim = Simulator()
    pfs = testbed.build(sim)
    pfs.enable_integrity()  # scrub verifies even when no faults are scheduled
    if faults is not None:
        try:
            FaultInjector(sim, pfs, faults, seed=args.seed).install()
        except FaultSpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    world = SimMPI(sim, workload.config.n_processes, network=pfs.network)
    mf = MPIIOFile.open(world.comm, pfs, "shared.dat", layout)
    sim.run(world.spawn(workload.rank_program(mf)))
    write_makespan = sim.now
    if faults is not None:
        # Let any corruption events scheduled past the write horizon fire.
        last = max((event.time for event in faults.events), default=0.0)
        if last > sim.now:

            def idle(delay=last - sim.now):
                yield sim.timeout(delay)

            sim.run(sim.process(idle()))
    scrubber = Scrubber(pfs, chunk_size=chunk_size, duty_cycle=args.duty_cycle)
    sim.run(scrubber.start())
    report = scrubber.last_report
    stats = pfs.integrity.stats()
    print(
        f"wrote {format_size(workload.config.file_size)} under layout {label} "
        f"in {write_makespan:.4f}s"
    )
    print(f"  {report.summary()}")
    print(f"  {_integrity_line(stats)}")
    if stats.silent_corruptions != 0:
        print(
            f"error: {stats.silent_corruptions} corruption(s) escaped silently",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import metrics_summary

    testbed = _testbed(args)
    reports: list = []
    try:
        workload = _ior_workload(args)
        layout, label, _ = _resolve_layout(args, testbed, workload, report_sink=reports)
    except (LayoutSpecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_workload(testbed, workload, layout, layout_name=label, trace=True)
    obs = result.obs
    assert obs is not None  # trace=True guarantees a snapshot
    if reports:
        # Fold the planner's cache/region diagnostics into the same summary.
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        record_plan_report(registry, reports[0])
        from dataclasses import replace

        obs = replace(obs, metrics=MetricsRegistry.merge([obs.metrics, registry.snapshot()]))
    write_chrome_trace(args.out, obs)
    print(f"Chrome trace ({obs.n_spans} spans) written to {args.out}")
    print(f"open chrome://tracing or https://ui.perfetto.dev and load {args.out}")
    if args.csv:
        write_spans_csv(args.csv, obs)
        print(f"CSV span dump written to {args.csv}")
    print()
    print(f"layout {label}: {result.throughput_mib:.1f} MiB/s (makespan {result.makespan:.4f}s)")
    print()
    print(metrics_summary(obs))
    return 0


def cmd_run_figure(args: argparse.Namespace) -> int:
    import inspect

    try:
        fn, kwargs = FIGURES[args.figure]
    except KeyError:
        print(
            f"error: unknown figure {args.figure!r}; use one of {', '.join(FIGURES)}",
            file=sys.stderr,
        )
        return 2
    kwargs = dict(kwargs)
    # fig6 has no parallelizable points; only pass jobs where accepted.
    if "jobs" in inspect.signature(fn).parameters:
        kwargs["jobs"] = args.jobs
    result = fn(**kwargs)
    text = result.render()
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.workloads.replay import ReplayConfig, TraceReplayWorkload

    trace = TraceFile.load(args.trace)
    if not trace:
        print("error: trace is empty", file=sys.stderr)
        return 2
    workload = TraceReplayWorkload(
        trace, ReplayConfig(preserve_think_time=args.think_time)
    )
    testbed = _testbed(args)
    name = args.layout.lower()
    if name == "harl":
        layout = harl_plan(testbed, workload)
        label = "HARL"
    else:
        try:
            stripe = parse_size(args.layout)
        except ValueError:
            print(
                f"error: invalid --layout {args.layout!r}: expected 'harl' "
                f"or a stripe size like '64K'",
                file=sys.stderr,
            )
            return 2
        layout = FixedLayout(args.hservers, args.sservers, stripe)
        label = format_size(stripe)
    if args.batched:
        result = run_workload_batched(testbed, workload, layout, layout_name=label)
    else:
        result = run_workload(testbed, workload, layout, layout_name=label)
    print(
        f"replayed {len(trace)} requests on {workload.n_processes} ranks, layout {label}:"
    )
    print(f"  {result.throughput_mib:.1f} MiB/s (makespan {result.makespan:.4f}s)")
    return 0


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (Linux ru_maxrss is KiB)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # macOS reports bytes
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def cmd_replay_bench(args: argparse.Namespace) -> int:
    import time

    request_size = parse_size(args.request_size)
    # IOR needs a whole number of requests per rank; round up so any
    # --requests value works.
    per_rank = -(-args.requests // args.processes)
    n_requests = per_rank * args.processes
    if n_requests != args.requests:
        print(f"note: rounding --requests up to {n_requests} ({per_rank} per rank)")
    config = IORConfig(
        n_processes=args.processes,
        request_size=request_size,
        file_size=n_requests * request_size,
        op=args.op,
        random_offsets=not args.sequential,
    )
    workload = IORWorkload(config)
    testbed = _testbed(args)
    try:
        stripe = parse_size(args.layout)
    except ValueError:
        print(
            f"error: invalid --layout {args.layout!r}: expected a stripe size like '64K'",
            file=sys.stderr,
        )
        return 2
    layout = FixedLayout(args.hservers, args.sservers, stripe)

    if args.chunk_size:
        # Streamed replay: generate + submit one window at a time on one
        # long-lived cluster, so peak RSS is bounded by the chunk, not the
        # run (the 100M-request mode).
        from repro.simulate.engine import Simulator

        sim = Simulator()
        pfs = testbed.build(sim)
        handle = pfs.create_file("shared.dat", layout)
        start = time.perf_counter()
        n_chunks = 0
        for chunk in workload.iter_request_batches(args.chunk_size):
            sim.run(handle.request_batch(chunk))
            n_chunks += 1
        fast_wall = time.perf_counter() - start
        makespan, total_bytes = sim.now, n_requests * request_size
        stats = pfs.batch_stats
        fallbacks = dict(pfs.batch_fallbacks)
        n_subrequests = sum(s.subrequests_served for s in pfs.servers)
        print(
            f"chunked replay of {n_requests} requests "
            f"({format_size(total_bytes)}, {n_chunks} chunks of <= {args.chunk_size}): "
            f"{fast_wall:.3f}s wall, makespan {makespan:.4f}s"
        )
    else:
        batch = workload.request_batch()
        start = time.perf_counter()
        fast = run_workload_batched(
            testbed, batch, layout, layout_name=format_size(stripe), stats_sink=(sink := {})
        )
        fast_wall = time.perf_counter() - start
        makespan = fast.makespan
        stats = sink["batch_stats"]
        fallbacks = sink["batch_fallbacks"]
        n_subrequests = sink["subrequests"]
        print(
            f"batched replay of {len(batch)} requests ({format_size(batch.total_bytes)}): "
            f"{fast_wall:.3f}s wall, makespan {makespan:.4f}s, "
            f"{fast.throughput_mib:.1f} MiB/s"
        )
    rate = n_subrequests / fast_wall if fast_wall > 0 else float("inf")
    tiers = (
        f"{stats['fast_columnar_batches']} columnar + "
        f"{stats['fast_batches'] - stats['fast_columnar_batches']} event-heap + "
        f"{stats['general_batches']} general"
    )
    print(f"  {n_subrequests} sub-requests, {rate:,.0f} subreq/s; batches: {tiers}")
    if fallbacks:
        breakdown = ", ".join(f"{k}={v}" for k, v in sorted(fallbacks.items()))
        print(f"  fallback reasons: {breakdown}")
    else:
        print("  fallback reasons: none")
    peak_mb = _peak_rss_mb()
    print(f"  peak RSS {peak_mb:.0f} MiB")
    if args.max_rss_mb and peak_mb > args.max_rss_mb:
        print(
            f"error: peak RSS {peak_mb:.0f} MiB exceeds --max-rss-mb {args.max_rss_mb}",
            file=sys.stderr,
        )
        return 1
    if args.general:
        if args.chunk_size:
            print("error: --general is incompatible with --chunk-size", file=sys.stderr)
            return 2
        start = time.perf_counter()
        general = run_workload_batched(
            testbed, batch, layout, layout_name=format_size(stripe), force_general=True
        )
        general_wall = time.perf_counter() - start
        match = "identical" if general.makespan == makespan else "MISMATCH"
        print(
            f"general path: {general_wall:.3f}s wall, makespan {general.makespan:.4f}s "
            f"({match}); speedup {general_wall / fast_wall:.1f}x"
        )
        if match == "MISMATCH":
            return 1
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.workloads.analysis import analyze_trace, render_report

    trace = TraceFile.load(args.trace)
    if not trace:
        print("error: trace is empty", file=sys.stderr)
        return 2
    print(render_report(analyze_trace(trace), title=args.trace))
    return 0


def cmd_run_all(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    names = tuple(args.figures) if args.figures else None
    report = generate_report(names=names, jobs=args.jobs)
    text = report.render()
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0 if report.all_passed else 1


def cmd_list_figures(args: argparse.Namespace) -> int:
    descriptions = {
        "fig1a": "per-server I/O time under the 64K default layout",
        "fig1b": "throughput vs request size x fixed stripe size",
        "fig6": "a planned Region Stripe Table, before/after merging",
        "fig7": "IOR read/write across fixed/random/HARL layouts",
        "fig8": "IOR throughput vs process count",
        "fig9": "IOR throughput vs request size",
        "fig10": "IOR throughput vs HServer:SServer ratio",
        "fig11": "non-uniform four-region workload",
        "fig12": "BTIO with collective I/O",
        "mds-contention": "open-storm makespan/ops-per-s vs shards x cache",
        "rebuild": "rebuild duty cycle vs MTTR / slowdown under crashes",
    }
    for name in FIGURES:
        print(f"{name:14s} {descriptions[name]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HARL (ICPP 2015) reproduction: simulated hybrid PFS experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("calibrate", help="probe the testbed into Table-I parameters")
    _add_testbed_args(p)
    _add_jobs_arg(p)
    p.add_argument("--request-hint", help="probe near this request size (e.g. 512K)")
    p.set_defaults(fn=cmd_calibrate)

    p = sub.add_parser("plan", help="Analysis Phase: trace CSV -> RST")
    _add_testbed_args(p)
    p.add_argument("--trace", required=True, help="IOSIG trace CSV path")
    p.add_argument("--step", help="Algorithm 2 grid step (default: adaptive)")
    p.add_argument("--output", help="write the RST JSON here")
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("run-ior", help="simulate IOR under one layout")
    _add_testbed_args(p)
    _add_ior_args(p)
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record a DES event trace and write Chrome trace_event JSON here",
    )
    p.add_argument(
        "--faults",
        metavar="SPEC",
        help="inject faults, e.g. 'crash:sserver0@0.01;hang:hserver1@0.02+0.05;"
        "degrade:0@0.01x3+0.1;blip@0.02x2+0.1;corrupt:hserver0@0.03%%0.5' "
        "(enables client retry/failover)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="mirror every region N ways across the other server class "
        "(default 1 = no replication; corrupted reads self-heal when > 1)",
    )
    p.add_argument(
        "--rebuild",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="re-replicate regions lost to crashed servers onto survivors "
        "(requires --replicas >= 2; exits 1 if any region loses every copy)",
    )
    p.add_argument(
        "--rebuild-duty-cycle",
        type=float,
        default=1.0,
        metavar="FRAC",
        help="fraction of time the rebuild worker may occupy a disk "
        "(default 1.0 = rebuild at full speed)",
    )
    p.add_argument(
        "--write-quorum",
        type=int,
        default=None,
        metavar="K",
        help="acknowledge writes once K copies are durable; remaining "
        "mirrors complete asynchronously (default: all copies synchronous)",
    )
    _add_mds_args(p)
    p.set_defaults(fn=cmd_run_ior)

    p = sub.add_parser(
        "chaos", help="sweep stochastic fault rates: HARL vs fixed baseline"
    )
    _add_testbed_args(p)
    _add_ior_args(p, layout=False)  # chaos always compares HARL vs baseline
    _add_jobs_arg(p)
    _add_mds_args(p)
    p.add_argument(
        "--mds-crash-rate",
        type=float,
        default=0.0,
        help="expected metadata-shard crashes per run at sweep rate 1 "
        "(default 0; requires --mds-shards >= 1; exits 1 if any namespace "
        "entry is lost after recovery)",
    )
    p.add_argument(
        "--rates",
        default="0,1,2,4",
        help="comma-separated expected fault counts per run (default 0,1,2,4)",
    )
    p.add_argument(
        "--baseline-stripe",
        default="64K",
        metavar="SIZE",
        help="fixed-layout stripe to compare HARL against (default 64K)",
    )
    p.add_argument(
        "--corrupt-rate",
        type=float,
        default=0.0,
        help="expected silent-corruption events per run at sweep rate 1 "
        "(default 0 = no corruption; scales with the sweep rate)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="mirror every region N ways in both layouts (default 1; with "
        "> 1 random crash schedules leave at least one survivor per class)",
    )
    p.add_argument(
        "--rebuild",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="re-replicate crashed servers' regions onto survivors and gate "
        "the sweep on zero data loss (requires --replicas >= 2)",
    )
    p.add_argument(
        "--rebuild-duty-cycle",
        type=float,
        default=1.0,
        metavar="FRAC",
        help="fraction of time the rebuild worker may occupy a disk "
        "(default 1.0 = rebuild at full speed)",
    )
    p.add_argument(
        "--restore-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="rejoin every crashed server this many seconds after its crash "
        "(models chassis swap; rebuild backfills its regions on rejoin)",
    )
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="multi-tenant QoS serving: tiers, admission control, hedged reads",
    )
    _add_testbed_args(p)
    _add_jobs_arg(p)
    p.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="SPEC",
        help="tenant spec 'name[:tier[:key=value,...]]' (repeatable), e.g. "
        "'web:gold:clients=8,think=0.01' or 'batch:bronze:arrival=poisson,"
        "rate=200,queue=64'; default: one closed-loop tenant per tier",
    )
    p.add_argument(
        "--tiers",
        metavar="PATH",
        help="JSON file mapping tier name -> {weight, replicas, hedge, "
        "hedge_quantile} (default: built-in bronze/silver/gold ladder)",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=1.0,
        help="measurement window in simulated seconds (default 1.0)",
    )
    p.add_argument("--stripe", default="64K", help="stripe size (default 64K)")
    p.add_argument(
        "--faults",
        metavar="SPEC",
        help="scripted fault spec, same grammar as run-ior",
    )
    p.add_argument(
        "--chaos",
        type=float,
        default=0.0,
        metavar="RATE",
        help="add a seeded degrade-heavy random schedule (RATE = expected "
        "degrades over the window; blips/hangs at half/quarter rate)",
    )
    p.add_argument(
        "--no-hedging",
        action="store_true",
        help="disable hedged reads even for tiers that request them",
    )
    p.add_argument(
        "--no-fair-share",
        action="store_true",
        help="keep FIFO disk queues instead of weighted fair queueing",
    )
    p.add_argument(
        "--compare-hedging",
        action="store_true",
        help="also run the identical scenario with hedging off and report "
        "the per-tier p99 delta",
    )
    p.add_argument(
        "--assert-p99",
        action="append",
        default=[],
        metavar="A<B",
        help="exit 1 unless tier A's p99 beats tier B's, e.g. 'gold<bronze' "
        "(repeatable; for CI gating)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "mds-bench",
        help="open-storm metadata bench: shard count x routing x cache on/off",
    )
    p.add_argument(
        "--shards",
        default="1,2,4,8",
        help="comma-separated shard counts to sweep (default 1,2,4,8)",
    )
    p.add_argument(
        "--routing",
        choices=("finger", "linear", "both"),
        default="both",
        help="ring routing mode(s) to sweep (default both)",
    )
    p.add_argument("--ops", type=int, default=4096, help="total opens (default 4096)")
    p.add_argument(
        "--processes", type=int, default=16, help="client processes (default 16)"
    )
    p.add_argument(
        "--spread",
        type=float,
        default=0.0,
        help="issue-time spread in seconds; 0 = one instantaneous burst (default 0)",
    )
    p.add_argument(
        "--mds-profile",
        default=None,
        metavar="SPEC",
        help="MDS service-time profile (default: calibrated)",
    )
    p.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 unless the cached/uncached ops-per-second ratio is "
        ">= X at every swept shard count (for CI gating)",
    )
    p.add_argument("--output", help="also write the table to this file")
    _add_jobs_arg(p)
    p.set_defaults(fn=cmd_mds_bench)

    p = sub.add_parser(
        "scrub",
        help="write under corruption faults, then scrub-sweep and repair",
    )
    _add_testbed_args(p)
    _add_ior_args(p)
    p.add_argument(
        "--faults",
        metavar="SPEC",
        default="corrupt:0@0.01%0.25;corrupt:1@0.02",
        help="fault spec; corrupt:<server>@<t>[%%<rate>] events poison stored "
        "stripe units (default poisons servers 0 and 1)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="region replication factor; 2+ lets the scrubber repair from "
        "the mirror copy (default 2)",
    )
    p.add_argument("--chunk-size", default="4M", help="bytes verified per scrub read (default 4M)")
    p.add_argument(
        "--duty-cycle",
        type=float,
        default=1.0,
        help="fraction of time the scrubber may keep a device busy (default 1.0)",
    )
    p.set_defaults(fn=cmd_scrub)

    p = sub.add_parser(
        "trace", help="simulate IOR with full DES tracing; export Chrome trace + metrics"
    )
    _add_testbed_args(p)
    _add_ior_args(p)
    p.add_argument("--out", default="trace.json", help="Chrome trace_event JSON path")
    p.add_argument("--csv", help="also write the raw span dump as CSV here")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("analyze", help="summarize an IOSIG trace CSV")
    p.add_argument("--trace", required=True, help="trace CSV path")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "replay-bench",
        help="time a large columnar replay on the batched fast path "
        "(optionally against the general per-request path)",
    )
    _add_testbed_args(p)
    p.add_argument("--requests", type=int, default=100_000, help="request count (default 100000)")
    p.add_argument("--request-size", default="64K")
    p.add_argument("--processes", type=int, default=16)
    p.add_argument("--op", choices=("read", "write"), default="write")
    p.add_argument("--sequential", action="store_true", help="in-order offsets (default: random)")
    p.add_argument("--layout", default="64K", help="fixed stripe size (default 64K)")
    p.add_argument(
        "--general",
        action="store_true",
        help="also run the per-request general path; verify identical makespan and report speedup",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=0,
        metavar="N",
        help="stream the workload as windows of N requests on one cluster "
        "(memory-bounded; generation and replay are interleaved)",
    )
    p.add_argument(
        "--max-rss-mb",
        type=float,
        default=0,
        metavar="MB",
        help="exit non-zero if the process's peak RSS exceeds this bound",
    )
    p.set_defaults(fn=cmd_replay_bench)

    p = sub.add_parser("replay", help="replay a trace CSV under a layout")
    _add_testbed_args(p)
    p.add_argument("--trace", required=True, help="trace CSV path")
    p.add_argument("--layout", default="harl", help="'harl' or a fixed stripe size")
    p.add_argument(
        "--think-time", action="store_true", help="preserve recorded inter-arrival gaps"
    )
    p.add_argument(
        "--batched",
        action="store_true",
        help="submit the trace as one columnar batch (fast path when eligible)",
    )
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("run-figure", help="regenerate one paper figure")
    p.add_argument("figure", help="figure name (see list-figures)")
    p.add_argument("--output", help="also write the table to this file")
    _add_jobs_arg(p)
    p.set_defaults(fn=cmd_run_figure)

    p = sub.add_parser(
        "run-all", help="regenerate every figure into one reproduction report"
    )
    p.add_argument("--output", help="write the markdown report here (default: stdout)")
    _add_jobs_arg(p)
    p.add_argument(
        "figures", nargs="*", help="optional subset of figure names (default: all)"
    )
    p.set_defaults(fn=cmd_run_all)

    p = sub.add_parser("list-figures", help="list reproducible figures")
    p.set_defaults(fn=cmd_list_figures)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
