"""NAS BTIO: block-tridiagonal solver I/O with collective buffering.

BTIO partitions a cubic NX³ array of 5-double cells among P = q² processes
using BT's diagonal cell decomposition: rank p = (prow, pcol) owns q cells,
the c-th at cell coordinates::

    (i, j, k) = (c, (pcol + c) mod q, (prow + c) mod q)

Every ``write_interval`` timesteps the solution array is appended to the
output file with ``MPI_File_write_all``; after the solve, the file is read
back collectively for verification ("full" subtype semantics). Each rank's
contribution per I/O phase is nested-strided: one contiguous run per (cell,
z, y) line of its sub-cubes.

The paper runs class A (64³ grid) with 4/16/64 processes. Simulating 64³ ×
40 appended steps is feasible but slow in CI, so :class:`BTIOConfig` scales
the grid and step count; EXPERIMENTS.md records the factors.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Generator
from dataclasses import dataclass

import numpy as np

from repro.devices.base import OpType
from repro.middleware.mpi_sim import RankContext
from repro.middleware.mpiio import MPIIOFile
from repro.pfs.batch import RequestBatch
from repro.workloads.traces import TraceRecord, sort_trace

#: Bytes per grid cell: 5 solution variables × 8-byte doubles.
CELL_BYTES = 5 * 8

#: NAS class name → grid dimension (timesteps are all 200 in NAS; we scale).
CLASS_GRIDS = {"S": 12, "W": 24, "A": 64, "B": 102, "C": 162}


@dataclass(frozen=True)
class BTIOConfig:
    """BTIO run parameters.

    ``n_processes`` must be a perfect square and ``grid`` divisible by its
    root (NAS requires the same).
    """

    n_processes: int = 16
    grid: int = 32
    timesteps: int = 20
    write_interval: int = 5
    read_back: bool = True
    compute_time_per_step: float = 0.0
    n_aggregators: int = 8

    def __post_init__(self):
        q = math.isqrt(self.n_processes)
        if q * q != self.n_processes:
            raise ValueError(f"BTIO needs a square process count, got {self.n_processes}")
        if self.grid % q != 0:
            raise ValueError(f"grid ({self.grid}) must be divisible by sqrt(P) = {q}")
        if self.timesteps < 1 or self.write_interval < 1:
            raise ValueError("timesteps and write_interval must be >= 1")
        if self.n_aggregators < 1:
            raise ValueError("n_aggregators must be >= 1")

    @property
    def q(self) -> int:
        """Process grid side: sqrt(P)."""
        return math.isqrt(self.n_processes)

    @property
    def cell_dim(self) -> int:
        """Sub-cube side owned per cell: grid / q."""
        return self.grid // self.q

    @property
    def array_bytes(self) -> int:
        """Bytes of one solution snapshot: grid³ cells."""
        return self.grid**3 * CELL_BYTES

    @property
    def n_writes(self) -> int:
        """Snapshots appended over the run."""
        return self.timesteps // self.write_interval

    @property
    def total_write_bytes(self) -> int:
        return self.n_writes * self.array_bytes

    @property
    def total_io_bytes(self) -> int:
        """Write volume plus the verification read-back."""
        return self.total_write_bytes * (2 if self.read_back else 1)


class BTIOWorkload:
    """Generates BTIO's nested-strided collective pieces and rank programs."""

    def __init__(self, config: BTIOConfig):
        self.config = config

    def owned_cells(self, rank: int) -> list[tuple[int, int, int]]:
        """BT diagonal decomposition: the q cell coordinates of ``rank``."""
        q = self.config.q
        if not (0 <= rank < self.config.n_processes):
            raise ValueError(f"rank {rank} out of range 0..{self.config.n_processes - 1}")
        prow, pcol = divmod(rank, q)
        return [(c, (pcol + c) % q, (prow + c) % q) for c in range(q)]

    def snapshot_pieces(self, rank: int, snapshot: int) -> list[tuple[int, int]]:
        """(offset, size) runs ``rank`` contributes to snapshot ``snapshot``.

        One contiguous run per (cell, z, y) line; offsets address the shared
        file with snapshots appended back-to-back.
        """
        cfg = self.config
        cn = cfg.cell_dim
        grid = cfg.grid
        base = snapshot * cfg.array_bytes
        run = cn * CELL_BYTES
        pieces: list[tuple[int, int]] = []
        for ci, cj, ck in self.owned_cells(rank):
            x0 = ci * cn
            for z in range(ck * cn, (ck + 1) * cn):
                for y in range(cj * cn, (cj + 1) * cn):
                    element = (z * grid + y) * grid + x0
                    pieces.append((base + element * CELL_BYTES, run))
        return pieces

    def piece_trace(self) -> list[TraceRecord]:
        """The raw MPI-level trace: every rank's nested-strided pieces.

        This is what an IOSIG hook at the ``MPI_File_write_all`` boundary
        records — useful for analysis, but not what reaches the PFS once
        collective buffering aggregates.
        """
        cfg = self.config
        records: list[TraceRecord] = []
        time = 0.0
        phases: list[OpType] = [OpType.WRITE]
        if cfg.read_back:
            phases.append(OpType.READ)
        for op in phases:
            for snapshot in range(cfg.n_writes):
                for rank in range(cfg.n_processes):
                    for offset, size in self.snapshot_pieces(rank, snapshot):
                        records.append(
                            TraceRecord(
                                pid=1, rank=rank, fd=3, op=op,
                                offset=offset, size=size, timestamp=time,
                            )
                        )
                time += 1.0
        return sort_trace(records)

    def synthetic_trace(self) -> list[TraceRecord]:
        """The access-phase trace: what collective buffering sends to the PFS.

        HARL must lay out the file for the requests the PFS actually serves.
        Under two-phase I/O those are the aggregators' contiguous file-domain
        runs, not the ranks' tiny strided pieces, so the planning trace
        records the post-aggregation requests (merged per snapshot, split
        into ``n_aggregators`` domains).
        """
        from repro.middleware.collective import merge_intervals, split_into_domains

        cfg = self.config
        records: list[TraceRecord] = []
        time = 0.0
        phases: list[OpType] = [OpType.WRITE]
        if cfg.read_back:
            phases.append(OpType.READ)
        for op in phases:
            for snapshot in range(cfg.n_writes):
                pieces = [
                    p
                    for rank in range(cfg.n_processes)
                    for p in self.snapshot_pieces(rank, snapshot)
                ]
                runs = merge_intervals(pieces)
                domains = split_into_domains(runs, min(cfg.n_aggregators, cfg.n_processes))
                for aggregator, domain in enumerate(domains):
                    for offset, size in merge_intervals(domain):
                        records.append(
                            TraceRecord(
                                pid=1, rank=aggregator, fd=3, op=op,
                                offset=offset, size=size, timestamp=time,
                            )
                        )
                time += 1.0
        return sort_trace(records)

    def request_batch(self) -> RequestBatch:
        """The post-aggregation request stream as one columnar batch.

        Same requests as :meth:`synthetic_trace` — the aggregators'
        contiguous file-domain runs, i.e. what the PFS actually serves under
        collective buffering — but in issue order (phase, snapshot,
        aggregator) rather than offset-sorted.
        """
        from repro.middleware.collective import merge_intervals, split_into_domains

        cfg = self.config
        offsets: list[int] = []
        sizes: list[int] = []
        reads: list[bool] = []
        phases: list[OpType] = [OpType.WRITE]
        if cfg.read_back:
            phases.append(OpType.READ)
        for op in phases:
            for snapshot in range(cfg.n_writes):
                pieces = [
                    p
                    for rank in range(cfg.n_processes)
                    for p in self.snapshot_pieces(rank, snapshot)
                ]
                runs = merge_intervals(pieces)
                domains = split_into_domains(runs, min(cfg.n_aggregators, cfg.n_processes))
                for domain in domains:
                    for offset, size in merge_intervals(domain):
                        offsets.append(offset)
                        sizes.append(size)
                        reads.append(op is OpType.READ)
        return RequestBatch(
            offsets=np.array(offsets, dtype=np.int64),
            sizes=np.array(sizes, dtype=np.int64),
            is_read=np.array(reads, dtype=bool),
        )

    def rank_program(
        self, mf: MPIIOFile, collective: bool = True
    ) -> Callable[[RankContext], Generator]:
        """Coroutine per rank: timestep loop with I/O phases.

        ``collective=True`` (BTIO's "full" subtype) uses two-phase collective
        buffering; ``collective=False`` issues every nested-strided piece as
        an independent request (the "simple" subtype), which the collective
        ablation bench compares against.
        """
        cfg = self.config

        def do_io(ctx: RankContext, op_write: bool, snapshot: int) -> Generator:
            pieces = self.snapshot_pieces(ctx.rank, snapshot)
            if collective:
                if op_write:
                    yield from mf.write_at_all(ctx.rank, pieces)
                else:
                    yield from mf.read_at_all(ctx.rank, pieces)
            else:
                for offset, size in pieces:
                    if op_write:
                        yield from mf.write_at(ctx.rank, offset, size)
                    else:
                        yield from mf.read_at(ctx.rank, offset, size)
                yield from ctx.barrier()  # The simple subtype still syncs phases.

        def program(ctx: RankContext) -> Generator:
            yield from ctx.barrier()
            snapshot = 0
            for step in range(1, cfg.timesteps + 1):
                if cfg.compute_time_per_step > 0:
                    yield ctx.sim.timeout(cfg.compute_time_per_step)
                if step % cfg.write_interval == 0:
                    yield from do_io(ctx, True, snapshot)
                    snapshot += 1
            if cfg.read_back:
                for snap in range(cfg.n_writes):
                    yield from do_io(ctx, False, snap)
            yield from ctx.barrier()
            return snapshot

        return program
