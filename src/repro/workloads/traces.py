"""IOSIG-style I/O traces.

The paper's tracing phase records, per file operation: process id, MPI rank,
file descriptor, operation type, offset, request size, and a timestamp
(Sec. III-B), then sorts read/write records by ascending offset to feed
region division. :class:`TraceRecord` mirrors that schema; :class:`TraceFile`
persists streams as CSV (one artifact per application run).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.devices.base import OpType


@dataclass(frozen=True)
class TraceRecord:
    """One traced file operation (the IOSIG record)."""

    pid: int
    rank: int
    fd: int
    op: OpType
    offset: int
    size: int
    timestamp: float

    def __post_init__(self):
        if self.offset < 0 or self.size <= 0:
            raise ValueError(f"invalid trace record: offset={self.offset}, size={self.size}")


def sort_trace(records: Iterable[TraceRecord]) -> list[TraceRecord]:
    """Sort records by ascending offset (ties by timestamp) — the collector's
    output order that Algorithm 1 expects."""
    return sorted(records, key=lambda r: (r.offset, r.timestamp))


def trace_arrays(records: Sequence[TraceRecord]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Columnize a trace: (offsets, sizes, is_read) numpy arrays."""
    n = len(records)
    offsets = np.empty(n, dtype=np.int64)
    sizes = np.empty(n, dtype=np.int64)
    is_read = np.empty(n, dtype=bool)
    for i, record in enumerate(records):
        offsets[i] = record.offset
        sizes[i] = record.size
        is_read[i] = record.op is OpType.READ
    return offsets, sizes, is_read


class TraceFile:
    """CSV persistence for traces (the artifact of the Tracing Phase)."""

    HEADER = ("pid", "rank", "fd", "op", "offset", "size", "timestamp")

    @classmethod
    def dumps(cls, records: Iterable[TraceRecord]) -> str:
        """Serialize records to CSV text."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(cls.HEADER)
        for r in records:
            writer.writerow((r.pid, r.rank, r.fd, r.op.value, r.offset, r.size, f"{r.timestamp:.9f}"))
        return buffer.getvalue()

    @classmethod
    def loads(cls, text: str) -> list[TraceRecord]:
        """Parse CSV text back into records."""
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header is None or tuple(header) != cls.HEADER:
            raise ValueError(f"not a trace file: bad header {header!r}")
        records = []
        for row in reader:
            if not row:
                continue
            pid, rank, fd, op, offset, size, timestamp = row
            records.append(
                TraceRecord(
                    pid=int(pid),
                    rank=int(rank),
                    fd=int(fd),
                    op=OpType.parse(op),
                    offset=int(offset),
                    size=int(size),
                    timestamp=float(timestamp),
                )
            )
        return records

    @classmethod
    def save(cls, path: str | Path, records: Iterable[TraceRecord]) -> None:
        """Write a trace CSV to disk."""
        Path(path).write_text(cls.dumps(records))

    @classmethod
    def load(cls, path: str | Path) -> list[TraceRecord]:
        """Read a trace CSV from disk."""
        return cls.loads(Path(path).read_text())
