"""Workload generators and trace infrastructure.

- :mod:`repro.workloads.traces` — the IOSIG-style trace record/file format
  the planner consumes.
- :mod:`repro.workloads.ior` — the IOR benchmark's access patterns
  (segmented shared file, fixed request size, sequential or random offsets,
  read and write phases).
- :mod:`repro.workloads.btio` — NAS BTIO's block-tridiagonal nested-strided
  collective pattern for square process counts.
- :mod:`repro.workloads.synthetic` — multi-region non-uniform workloads
  (the paper's modified four-region IOR, Fig. 11).
- :mod:`repro.workloads.metadata` — open/stat-heavy metadata storms
  (zero-byte opens of one shared file; pure MDS-contention pressure).
"""

from repro.workloads.analysis import (
    SpatialHeat,
    TraceReport,
    analyze_trace,
    render_report,
    spatial_heat,
)
from repro.pfs.batch import RequestBatch
from repro.workloads.btio import BTIOConfig, BTIOWorkload
from repro.workloads.checkpoint import CheckpointConfig, CheckpointN1Workload, n_n_apps
from repro.workloads.ior import IORConfig, IORWorkload
from repro.workloads.metadata import MetadataConfig, MetadataWorkload
from repro.workloads.replay import ReplayConfig, TraceReplayWorkload
from repro.workloads.synthetic import RegionSpec, SyntheticRegionWorkload
from repro.workloads.temporal import PhaseSpec, TemporalPhaseWorkload
from repro.workloads.traces import TraceFile, TraceRecord, sort_trace, trace_arrays

__all__ = [
    "BTIOConfig",
    "BTIOWorkload",
    "CheckpointConfig",
    "CheckpointN1Workload",
    "IORConfig",
    "IORWorkload",
    "MetadataConfig",
    "MetadataWorkload",
    "PhaseSpec",
    "RegionSpec",
    "ReplayConfig",
    "RequestBatch",
    "SpatialHeat",
    "SyntheticRegionWorkload",
    "TemporalPhaseWorkload",
    "TraceFile",
    "TraceRecord",
    "TraceReplayWorkload",
    "TraceReport",
    "analyze_trace",
    "n_n_apps",
    "render_report",
    "sort_trace",
    "spatial_heat",
    "trace_arrays",
]
