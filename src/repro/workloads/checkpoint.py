"""Checkpoint workloads: N-1 (shared file) vs N-N (file per process).

PLFS (Bent et al., SC'09 — the paper's ref. [16]) is motivated by the gap
between these two patterns: N processes checkpointing into one shared file
(N-1) interleave their blocks and historically perform far worse than N
processes each writing a private file (N-N). This module generates both so
the harness can study how data layout interacts with checkpoint style:

- :class:`CheckpointN1Workload` — one shared file; each of P ranks writes
  its state as one block per *checkpoint round*, blocks interleaved
  round-major (the classic strided N-1 pattern). It satisfies the standard
  workload protocol and runs through ``run_workload``.
- :func:`n_n_apps` — the N-N equivalent expressed as P single-rank
  applications (one private file each), runnable with
  :func:`repro.experiments.harness.run_concurrent_workloads`.

Both write the same bytes, so their results are directly comparable.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass

import numpy as np

from repro.devices.base import OpType
from repro.middleware.mpi_sim import RankContext
from repro.middleware.mpiio import MPIIOFile
from repro.pfs.batch import RequestBatch
from repro.util.units import KiB, MiB
from repro.workloads.ior import IORConfig, IORWorkload
from repro.workloads.traces import TraceRecord, sort_trace


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpoint parameters shared by the N-1 and N-N variants.

    Each of ``rounds`` checkpoint rounds writes ``state_per_process`` bytes
    per process in ``request_size`` records.
    """

    n_processes: int = 16
    state_per_process: int = 4 * MiB
    request_size: int = 512 * KiB
    rounds: int = 2
    compute_time_per_round: float = 0.0

    def __post_init__(self):
        if self.n_processes < 1 or self.rounds < 1:
            raise ValueError("n_processes and rounds must be >= 1")
        if self.state_per_process % self.request_size != 0:
            raise ValueError(
                f"state_per_process ({self.state_per_process}) must be a multiple of "
                f"request_size ({self.request_size})"
            )

    @property
    def requests_per_round(self) -> int:
        return self.state_per_process // self.request_size

    @property
    def round_bytes(self) -> int:
        """Bytes one round appends across all processes."""
        return self.state_per_process * self.n_processes

    @property
    def total_bytes(self) -> int:
        return self.round_bytes * self.rounds


class CheckpointN1Workload:
    """N-1: every round appends one interleaved region to a shared file.

    Round k occupies ``[k · round_bytes, (k+1) · round_bytes)``; within it,
    rank r's block is at ``k · round_bytes + r · state_per_process``. Ranks
    barrier between rounds (the checkpoint is globally consistent).
    """

    def __init__(self, config: CheckpointConfig):
        self.config = config

    @property
    def n_processes(self) -> int:
        return self.config.n_processes

    @property
    def total_bytes(self) -> int:
        return self.config.total_bytes

    def rank_round_requests(self, rank: int, round_index: int) -> list[tuple[int, int]]:
        """(offset, size) writes of one rank in one round, sequential."""
        cfg = self.config
        if not (0 <= rank < cfg.n_processes):
            raise ValueError(f"rank {rank} out of range")
        if not (0 <= round_index < cfg.rounds):
            raise ValueError(f"round {round_index} out of range")
        base = round_index * cfg.round_bytes + rank * cfg.state_per_process
        return [
            (base + i * cfg.request_size, cfg.request_size)
            for i in range(cfg.requests_per_round)
        ]

    def request_batch(self) -> RequestBatch:
        """All checkpoint writes as one columnar batch.

        Round-major, then rank-major, sequential within a rank's block —
        the order the writes reach the PFS under the barrier-separated
        rank programs. Offsets are generated as one broadcasted numpy grid.
        """
        cfg = self.config
        offsets = (
            np.arange(cfg.rounds, dtype=np.int64)[:, None, None] * cfg.round_bytes
            + np.arange(cfg.n_processes, dtype=np.int64)[None, :, None] * cfg.state_per_process
            + np.arange(cfg.requests_per_round, dtype=np.int64)[None, None, :]
            * cfg.request_size
        ).reshape(-1)
        n = offsets.shape[0]
        return RequestBatch(
            offsets=offsets,
            sizes=np.full(n, cfg.request_size, dtype=np.int64),
            is_read=np.zeros(n, dtype=bool),
        )

    def synthetic_trace(self) -> list[TraceRecord]:
        records = []
        for round_index in range(self.config.rounds):
            for rank in range(self.config.n_processes):
                for offset, size in self.rank_round_requests(rank, round_index):
                    records.append(
                        TraceRecord(
                            pid=1, rank=rank, fd=3, op=OpType.WRITE,
                            offset=offset, size=size, timestamp=float(round_index),
                        )
                    )
        return sort_trace(records)

    def rank_program(self, mf: MPIIOFile) -> Callable[[RankContext], Generator]:
        cfg = self.config

        def program(ctx: RankContext) -> Generator:
            yield from ctx.barrier()
            for round_index in range(cfg.rounds):
                if cfg.compute_time_per_round > 0:
                    yield ctx.sim.timeout(cfg.compute_time_per_round)
                for offset, size in self.rank_round_requests(ctx.rank, round_index):
                    yield from mf.write_at(ctx.rank, offset, size)
                yield from ctx.barrier()
            return cfg.rounds

        return program


def n_n_apps(config: CheckpointConfig, seed: int = 0) -> list[tuple[str, IORWorkload]]:
    """The N-N equivalent: one single-rank sequential writer per process.

    Each private file holds ``rounds × state_per_process`` bytes written
    sequentially — the pattern PLFS transforms N-1 into. Feed the result to
    ``run_concurrent_workloads`` (adding a layout per app).
    """
    apps = []
    for rank in range(config.n_processes):
        workload = IORWorkload(
            IORConfig(
                n_processes=1,
                request_size=config.request_size,
                file_size=config.rounds * config.state_per_process,
                op=OpType.WRITE,
                random_offsets=False,
                seed=seed + rank,
            )
        )
        apps.append((f"ckpt-rank{rank}", workload))
    return apps
