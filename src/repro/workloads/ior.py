"""The IOR benchmark's access patterns.

IOR (Interleaved-Or-Random) drives a shared file with fixed-size requests
from P processes. The paper's configuration (Sec. IV-B): "each process is
responsible for accessing its own 1/P of a shared file and continuously
issues requests with random offsets" — i.e., segmented layout, one segment
per process, random request order within the segment, request size fixed
(512 KB default, varied in Fig. 9).

:class:`IORWorkload` produces three views of that pattern:

- :meth:`rank_requests` — the (op, offset, size) stream of one rank;
- :meth:`synthetic_trace` — the IOSIG trace of a profiling run (the
  Tracing-Phase input when planning without running);
- :meth:`rank_program` — a coroutine for the simulated MPI world that
  replays the rank's stream through an :class:`MPIIOFile`.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass, field

import numpy as np

from repro.devices.base import OpType
from repro.middleware.mpi_sim import RankContext
from repro.middleware.mpiio import MPIIOFile
from repro.pfs.batch import RequestBatch
from repro.util.rng import derive_rng
from repro.util.units import KiB, MiB
from repro.workloads.traces import TraceRecord, sort_trace


@dataclass(frozen=True)
class IORConfig:
    """IOR run parameters (paper defaults unless overridden).

    ``file_size`` is the shared file's total size; it must divide evenly
    into ``segments × n_processes`` blocks of whole requests. With
    ``segments == 1`` (the paper's configuration) each process owns one
    contiguous 1/P of the file; with ``segments > 1`` the blocks interleave
    (IOR's segmentCount pattern): segment k holds one block per process,
    so each process's data is strided across the file. The paper's testbed
    uses a 16 GB file; experiments here default to a scaled-down file and
    record the scaling in EXPERIMENTS.md.
    """

    n_processes: int = 16
    request_size: int = 512 * KiB
    file_size: int = 64 * MiB
    op: OpType = OpType.WRITE
    random_offsets: bool = True
    segments: int = 1
    queue_depth: int = 1
    seed: int = 0

    def __post_init__(self):
        if self.n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {self.n_processes}")
        if self.request_size < 1:
            raise ValueError(f"request_size must be >= 1, got {self.request_size}")
        if self.segments < 1:
            raise ValueError(f"segments must be >= 1, got {self.segments}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.file_size % (self.segments * self.n_processes * self.request_size) != 0:
            raise ValueError(
                f"file_size ({self.file_size}) must be a whole number of requests "
                f"({self.request_size}) per process ({self.n_processes}) per segment "
                f"({self.segments})"
            )
        object.__setattr__(self, "op", OpType.parse(self.op))

    @property
    def segment_size(self) -> int:
        """Bytes of one file segment (one block per process)."""
        return self.file_size // self.segments

    @property
    def block_size(self) -> int:
        """Bytes of one process's contiguous block within a segment."""
        return self.segment_size // self.n_processes

    @property
    def requests_per_process(self) -> int:
        return self.segments * (self.block_size // self.request_size)

    @property
    def total_bytes(self) -> int:
        return self.file_size


class IORWorkload:
    """Generates IOR request streams from an :class:`IORConfig`."""

    def __init__(self, config: IORConfig):
        self.config = config

    def rank_requests(self, rank: int) -> list[tuple[OpType, int, int]]:
        """The (op, offset, size) stream of ``rank``, in issue order."""
        cfg = self.config
        if not (0 <= rank < cfg.n_processes):
            raise ValueError(f"rank {rank} out of range 0..{cfg.n_processes - 1}")
        requests_per_block = cfg.block_size // cfg.request_size
        offsets = np.empty(cfg.requests_per_process, dtype=np.int64)
        cursor = 0
        for segment in range(cfg.segments):
            base = segment * cfg.segment_size + rank * cfg.block_size
            for slot in range(requests_per_block):
                offsets[cursor] = base + slot * cfg.request_size
                cursor += 1
        if cfg.random_offsets:
            rng = derive_rng(cfg.seed, "ior", rank)
            offsets = rng.permutation(offsets)
        return [(cfg.op, int(offset), cfg.request_size) for offset in offsets]

    def all_requests(self) -> list[tuple[int, OpType, int, int]]:
        """Every rank's stream: (rank, op, offset, size) tuples."""
        out = []
        for rank in range(self.config.n_processes):
            out.extend((rank, op, o, s) for op, o, s in self.rank_requests(rank))
        return out

    def request_batch(self) -> RequestBatch:
        """The whole run as one columnar batch, rank-major in issue order.

        Offsets are generated directly as numpy columns (no per-request
        tuples); the per-rank permutation draws the same
        :func:`~repro.util.rng.derive_rng` stream as :meth:`rank_requests`,
        so the batch equals ``all_requests`` entry for entry.
        """
        cfg = self.config
        requests_per_block = cfg.block_size // cfg.request_size
        per_rank = cfg.requests_per_process
        # Slot grid of one rank at block base 0: segment-major, slot-minor —
        # the same enumeration order as rank_requests' nested loop.
        slot_grid = (
            np.arange(cfg.segments, dtype=np.int64)[:, None] * cfg.segment_size
            + np.arange(requests_per_block, dtype=np.int64)[None, :] * cfg.request_size
        ).reshape(-1)
        offsets = np.empty(cfg.n_processes * per_rank, dtype=np.int64)
        for rank in range(cfg.n_processes):
            mine = slot_grid + rank * cfg.block_size
            if cfg.random_offsets:
                mine = derive_rng(cfg.seed, "ior", rank).permutation(mine)
            offsets[rank * per_rank : (rank + 1) * per_rank] = mine
        n = offsets.shape[0]
        return RequestBatch(
            offsets=offsets,
            sizes=np.full(n, cfg.request_size, dtype=np.int64),
            is_read=np.full(n, cfg.op is OpType.READ, dtype=bool),
        )

    def iter_request_batches(self, chunk_requests: int) -> Generator[RequestBatch, None, None]:
        """Stream the run as consecutive columnar chunks, rank-major.

        Concatenating the yielded batches reproduces :meth:`request_batch`
        entry for entry (same :func:`~repro.util.rng.derive_rng` draws), but
        peak memory is one rank's offset column plus one chunk — not the
        whole run. This is what lets a 100M-request replay stay inside a
        bounded RSS: generate a window, replay it, drop it.

        Chunks hold exactly ``chunk_requests`` requests (the final one may
        be shorter) and may span rank boundaries.
        """
        if chunk_requests < 1:
            raise ValueError(f"chunk_requests must be >= 1, got {chunk_requests}")
        cfg = self.config
        requests_per_block = cfg.block_size // cfg.request_size
        slot_grid = (
            np.arange(cfg.segments, dtype=np.int64)[:, None] * cfg.segment_size
            + np.arange(requests_per_block, dtype=np.int64)[None, :] * cfg.request_size
        ).reshape(-1)
        pending: list[np.ndarray] = []
        pending_n = 0

        def drain(parts: list[np.ndarray]) -> RequestBatch:
            offsets = np.concatenate(parts) if len(parts) > 1 else parts[0]
            n = offsets.shape[0]
            return RequestBatch(
                offsets=offsets,
                sizes=np.full(n, cfg.request_size, dtype=np.int64),
                is_read=np.full(n, cfg.op is OpType.READ, dtype=bool),
            )

        for rank in range(cfg.n_processes):
            mine = slot_grid + rank * cfg.block_size
            if cfg.random_offsets:
                mine = derive_rng(cfg.seed, "ior", rank).permutation(mine)
            cursor = 0
            while cursor < mine.shape[0]:
                take = min(chunk_requests - pending_n, mine.shape[0] - cursor)
                pending.append(mine[cursor : cursor + take])
                pending_n += take
                cursor += take
                if pending_n == chunk_requests:
                    yield drain(pending)
                    pending = []
                    pending_n = 0
        if pending_n:
            yield drain(pending)

    def synthetic_trace(self) -> list[TraceRecord]:
        """The offset-sorted IOSIG trace a profiling run would produce."""
        records = []
        for rank, op, offset, size in self.all_requests():
            records.append(
                TraceRecord(
                    pid=1, rank=rank, fd=3, op=op, offset=offset, size=size, timestamp=0.0
                )
            )
        return sort_trace(records)

    def rank_program(self, mf: MPIIOFile) -> Callable[[RankContext], Generator]:
        """Build the coroutine each simulated MPI rank runs.

        ``queue_depth == 1`` (the real IOR's behaviour) issues blocking
        requests; deeper queues use the nonblocking iread/iwrite path with
        up to ``queue_depth`` requests in flight per rank.
        """
        depth = self.config.queue_depth

        def program(ctx: RankContext) -> Generator:
            requests = self.rank_requests(ctx.rank)
            yield from ctx.barrier()
            if depth == 1:
                for op, offset, size in requests:
                    if op is OpType.READ:
                        yield from mf.read_at(ctx.rank, offset, size)
                    else:
                        yield from mf.write_at(ctx.rank, offset, size)
            else:
                in_flight: list = []
                for op, offset, size in requests:
                    if op is OpType.READ:
                        in_flight.append(mf.iread_at(ctx.rank, offset, size))
                    else:
                        in_flight.append(mf.iwrite_at(ctx.rank, offset, size))
                    if len(in_flight) >= depth:
                        yield in_flight.pop(0)  # MPI_Wait on the oldest.
                for pending in in_flight:
                    yield pending
            yield from ctx.barrier()
            return len(requests)

        return program


@dataclass(frozen=True)
class MultiPhaseIORConfig:
    """IOR with distinct request sizes per file phase — Fig. 11's modified IOR.

    Kept for API symmetry; the full non-uniform workload generator lives in
    :mod:`repro.workloads.synthetic`.
    """

    phases: tuple[IORConfig, ...] = field(default_factory=tuple)
