"""Workloads whose I/O pattern changes over *time* (not file offset).

Region-level layout handles files whose pattern varies by *offset*; when
the pattern of the same byte range changes between execution phases (e.g. a
checkpoint written in 1 MB records, later read back in 128 KB records), a
static layout planned from the first phase's trace is wrong for the second.
This is the scenario motivating the paper's future-work item on *on-line*
layout and migration, implemented in :mod:`repro.online`.

:class:`TemporalPhaseWorkload` runs K phases back to back (barrier between
phases); every phase covers the same shared file with its own request size
and op type.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass

import numpy as np

from repro.devices.base import OpType
from repro.middleware.mpi_sim import RankContext
from repro.middleware.mpiio import MPIIOFile
from repro.util.rng import derive_rng
from repro.workloads.traces import TraceRecord, sort_trace


@dataclass(frozen=True)
class PhaseSpec:
    """One temporal phase: request size, per-rank request count, op type."""

    request_size: int
    requests_per_rank: int
    op: OpType = OpType.WRITE

    def __post_init__(self):
        if self.request_size < 1 or self.requests_per_rank < 1:
            raise ValueError("request_size and requests_per_rank must be >= 1")
        object.__setattr__(self, "op", OpType.parse(self.op))


class TemporalPhaseWorkload:
    """Sequential phases over one shared file, all spatially overlapping."""

    def __init__(
        self,
        phases: list[PhaseSpec],
        n_processes: int = 16,
        file_size: int | None = None,
        seed: int = 0,
    ):
        if not phases:
            raise ValueError("need at least one phase")
        if n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {n_processes}")
        self.phases = list(phases)
        self.n_processes = n_processes
        self.seed = seed
        # Default file size: the largest phase footprint. An explicit smaller
        # file makes phases revisit slots (checkpoint-style re-access).
        min_size = max(p.request_size * p.requests_per_rank * n_processes for p in phases)
        self.file_size = file_size if file_size is not None else min_size
        for index, phase in enumerate(self.phases):
            if self.file_size % (phase.request_size * n_processes) != 0:
                raise ValueError(
                    f"file size must be a whole number of phase-{index} requests "
                    f"({phase.request_size}) per process ({n_processes})"
                )

    @property
    def total_bytes(self) -> int:
        return sum(
            p.request_size * p.requests_per_rank * self.n_processes for p in self.phases
        )

    def phase_requests(self, phase_index: int, rank: int) -> list[tuple[OpType, int, int]]:
        """One rank's stream for one phase: aligned slots of its segment, shuffled."""
        phase = self.phases[phase_index]
        segment = self.file_size // self.n_processes
        base = rank * segment
        slots_in_segment = segment // phase.request_size
        rng = derive_rng(self.seed, "temporal", phase_index, rank)
        # Phases larger than the file revisit slots (checkpoint re-access).
        replace = phase.requests_per_rank > slots_in_segment
        chosen = rng.choice(slots_in_segment, size=phase.requests_per_rank, replace=replace)
        return [
            (phase.op, int(base + slot * phase.request_size), phase.request_size)
            for slot in chosen
        ]

    def phase_trace(self, phase_index: int) -> list[TraceRecord]:
        """Offset-sorted trace of one phase (what a profiling run of that
        phase alone would record)."""
        records = []
        for rank in range(self.n_processes):
            for op, offset, size in self.phase_requests(phase_index, rank):
                records.append(
                    TraceRecord(
                        pid=1, rank=rank, fd=3, op=op,
                        offset=offset, size=size, timestamp=float(phase_index),
                    )
                )
        return sort_trace(records)

    def synthetic_trace(self) -> list[TraceRecord]:
        """All phases' records, offset-sorted (the static planner's view)."""
        records = []
        for phase_index in range(len(self.phases)):
            records.extend(self.phase_trace(phase_index))
        return sort_trace(records)

    def rank_program(self, mf: MPIIOFile) -> Callable[[RankContext], Generator]:
        """Coroutine per rank: phases separated by barriers."""

        def program(ctx: RankContext) -> Generator:
            yield from ctx.barrier()
            for phase_index in range(len(self.phases)):
                for op, offset, size in self.phase_requests(phase_index, ctx.rank):
                    if op is OpType.READ:
                        yield from mf.read_at(ctx.rank, offset, size)
                    else:
                        yield from mf.write_at(ctx.rank, offset, size)
                yield from ctx.barrier()
            return len(self.phases)

        return program
