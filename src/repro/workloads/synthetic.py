"""Non-uniform multi-region workloads (the paper's modified IOR, Fig. 11).

The Fig. 11 experiment modifies IOR to access a four-region file — region
sizes 256 MB / 1 GB / 2 GB / 4 GB, each driven with a *different* request
size — so that no single stripe pair suits the whole file and region-level
layout pays off. :class:`SyntheticRegionWorkload` generalizes that: any list
of :class:`RegionSpec` (size, request size, optional coverage fraction),
requests distributed round-robin over ranks and shuffled per rank.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass

import numpy as np

from repro.devices.base import OpType
from repro.middleware.mpi_sim import RankContext
from repro.middleware.mpiio import MPIIOFile
from repro.pfs.batch import RequestBatch
from repro.util.rng import derive_rng
from repro.workloads.traces import TraceRecord, sort_trace


@dataclass(frozen=True)
class RegionSpec:
    """One file region of a non-uniform workload.

    ``coverage`` < 1 samples that fraction of the region's request slots
    (evenly spaced), which keeps huge regions affordable in simulation while
    preserving their request-size signature.
    """

    size: int
    request_size: int
    coverage: float = 1.0

    def __post_init__(self):
        if self.size < 1 or self.request_size < 1:
            raise ValueError("size and request_size must be >= 1")
        if self.size % self.request_size != 0:
            raise ValueError(
                f"region size ({self.size}) must be a multiple of its request size "
                f"({self.request_size})"
            )
        if not (0 < self.coverage <= 1):
            raise ValueError(f"coverage must be in (0, 1], got {self.coverage}")

    @property
    def n_slots(self) -> int:
        return self.size // self.request_size

    @property
    def n_requests(self) -> int:
        return max(1, int(round(self.n_slots * self.coverage)))


class SyntheticRegionWorkload:
    """Requests with per-region sizes over a multi-region file."""

    def __init__(
        self,
        regions: list[RegionSpec],
        n_processes: int = 16,
        op: OpType | str = OpType.WRITE,
        seed: int = 0,
    ):
        if not regions:
            raise ValueError("need at least one region")
        if n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {n_processes}")
        self.regions = list(regions)
        self.n_processes = n_processes
        self.op = OpType.parse(op)
        self.seed = seed

    @property
    def file_size(self) -> int:
        return sum(r.size for r in self.regions)

    @property
    def total_bytes(self) -> int:
        """Bytes actually accessed (≤ file size when coverage < 1)."""
        return sum(r.n_requests * r.request_size for r in self.regions)

    def region_bases(self) -> list[int]:
        """Start offset of each region in the file."""
        bases = []
        cursor = 0
        for region in self.regions:
            bases.append(cursor)
            cursor += region.size
        return bases

    def _all_slots(self) -> list[tuple[int, int]]:
        """Every sampled (offset, size) request, region order."""
        out: list[tuple[int, int]] = []
        for base, region in zip(self.region_bases(), self.regions):
            slots = np.linspace(0, region.n_slots - 1, region.n_requests)
            slots = np.unique(slots.round().astype(np.int64))
            out.extend(
                (int(base + slot * region.request_size), region.request_size) for slot in slots
            )
        return out

    def rank_requests(self, rank: int) -> list[tuple[OpType, int, int]]:
        """Round-robin share of the slots, shuffled per rank."""
        if not (0 <= rank < self.n_processes):
            raise ValueError(f"rank {rank} out of range 0..{self.n_processes - 1}")
        mine = self._all_slots()[rank :: self.n_processes]
        rng = derive_rng(self.seed, "synthetic", rank)
        order = rng.permutation(len(mine))
        return [(self.op, mine[i][0], mine[i][1]) for i in order]

    def request_batch(self) -> RequestBatch:
        """All ranks' streams as one columnar batch, rank-major.

        Per-rank shuffles draw the same RNG streams as
        :meth:`rank_requests`, applied as index permutations over numpy
        columns instead of list rebuilds.
        """
        slots = self._all_slots()
        n = len(slots)
        all_offsets = np.fromiter((o for o, _ in slots), dtype=np.int64, count=n)
        all_sizes = np.fromiter((s for _, s in slots), dtype=np.int64, count=n)
        offset_parts = []
        size_parts = []
        for rank in range(self.n_processes):
            mine_offsets = all_offsets[rank :: self.n_processes]
            mine_sizes = all_sizes[rank :: self.n_processes]
            order = derive_rng(self.seed, "synthetic", rank).permutation(mine_offsets.shape[0])
            offset_parts.append(mine_offsets[order])
            size_parts.append(mine_sizes[order])
        offsets = np.concatenate(offset_parts)
        return RequestBatch(
            offsets=offsets,
            sizes=np.concatenate(size_parts),
            is_read=np.full(offsets.shape[0], self.op is OpType.READ, dtype=bool),
        )

    def synthetic_trace(self) -> list[TraceRecord]:
        """Offset-sorted trace over all ranks."""
        records = []
        for rank in range(self.n_processes):
            for op, offset, size in self.rank_requests(rank):
                records.append(
                    TraceRecord(
                        pid=1, rank=rank, fd=3, op=op, offset=offset, size=size, timestamp=0.0
                    )
                )
        return sort_trace(records)

    def rank_program(self, mf: MPIIOFile) -> Callable[[RankContext], Generator]:
        """Coroutine per rank replaying its stream as independent I/O."""

        def program(ctx: RankContext) -> Generator:
            requests = self.rank_requests(ctx.rank)
            yield from ctx.barrier()
            for op, offset, size in requests:
                if op is OpType.READ:
                    yield from mf.read_at(ctx.rank, offset, size)
                else:
                    yield from mf.write_at(ctx.rank, offset, size)
            yield from ctx.barrier()
            return len(requests)

        return program
