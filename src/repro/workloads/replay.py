"""Replay of captured I/O traces (e.g. the LANL application traces the
paper cites as motivation [11]).

A :class:`TraceReplayWorkload` turns any IOSIG-format trace — collected by
this library's own collector or converted from an external source — into a
runnable workload: each rank re-issues its records in timestamp order,
optionally preserving inter-arrival gaps ("think time"). Combined with
``harl_plan`` this closes the paper's intended production loop: trace a
real application once, plan, re-run faster.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Generator
from dataclasses import dataclass, field

import numpy as np

from repro.devices.base import OpType
from repro.middleware.mpi_sim import RankContext
from repro.middleware.mpiio import MPIIOFile
from repro.pfs.batch import RequestBatch
from repro.workloads.traces import TraceRecord, sort_trace


@dataclass(frozen=True)
class ReplayConfig:
    """Replay behaviour knobs.

    ``preserve_think_time`` replays each rank's inter-arrival gaps scaled
    by ``time_scale`` (1.0 = as recorded); when off, ranks issue
    back-to-back (an I/O-bound stress replay).
    """

    preserve_think_time: bool = False
    time_scale: float = 1.0

    def __post_init__(self):
        if self.time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {self.time_scale}")


class TraceReplayWorkload:
    """Re-issues a trace's requests, per rank, in timestamp order."""

    def __init__(self, records: list[TraceRecord], config: ReplayConfig | None = None):
        if not records:
            raise ValueError("cannot replay an empty trace")
        self.records = list(records)
        self.config = config or ReplayConfig()
        by_rank: dict[int, list[TraceRecord]] = defaultdict(list)
        for record in self.records:
            by_rank[record.rank].append(record)
        # Ranks are renumbered densely so a trace with ranks {0, 3, 7}
        # replays on 3 simulated processes.
        self._rank_streams = [
            sorted(by_rank[rank], key=lambda r: (r.timestamp, r.offset))
            for rank in sorted(by_rank)
        ]

    @property
    def n_processes(self) -> int:
        return len(self._rank_streams)

    @property
    def total_bytes(self) -> int:
        return sum(record.size for record in self.records)

    def rank_stream(self, rank: int) -> list[TraceRecord]:
        """The (dense) rank's records in issue order."""
        if not (0 <= rank < self.n_processes):
            raise ValueError(f"rank {rank} out of range 0..{self.n_processes - 1}")
        return self._rank_streams[rank]

    def synthetic_trace(self) -> list[TraceRecord]:
        """Offset-sorted view for the planner."""
        return sort_trace(self.records)

    def request_batch(self) -> RequestBatch:
        """The trace as one columnar batch in global issue order.

        Records are merged across ranks, ordered by ``(timestamp, rank,
        offset)``. With ``preserve_think_time`` the batch carries per-request
        ``issue_times`` — each record's timestamp rebased to the earliest
        one and scaled by ``time_scale`` — so temporal replay no longer has
        to fall back to one-at-a-time submission.
        """
        config = self.config
        records = sorted(self.records, key=lambda r: (r.timestamp, r.rank, r.offset))
        n = len(records)
        issue_times = None
        if config.preserve_think_time:
            stamps = np.fromiter((r.timestamp for r in records), dtype=np.float64, count=n)
            issue_times = (stamps - stamps[0]) * config.time_scale
        return RequestBatch(
            offsets=np.fromiter((r.offset for r in records), dtype=np.int64, count=n),
            sizes=np.fromiter((r.size for r in records), dtype=np.int64, count=n),
            is_read=np.fromiter(
                (OpType.parse(r.op) is OpType.READ for r in records), dtype=bool, count=n
            ),
            issue_times=issue_times,
        )

    def rank_program(self, mf: MPIIOFile) -> Callable[[RankContext], Generator]:
        config = self.config

        def program(ctx: RankContext) -> Generator:
            stream = self.rank_stream(ctx.rank)
            yield from ctx.barrier()
            previous_ts = stream[0].timestamp if stream else 0.0
            for record in stream:
                if config.preserve_think_time:
                    gap = (record.timestamp - previous_ts) * config.time_scale
                    if gap > 0:
                        yield ctx.sim.timeout(gap)
                    previous_ts = record.timestamp
                if record.op is OpType.READ:
                    yield from mf.read_at(ctx.rank, record.offset, record.size)
                else:
                    yield from mf.write_at(ctx.rank, record.offset, record.size)
            yield from ctx.barrier()
            return len(stream)

        return program
