"""Open/stat-heavy metadata workloads: the MDS contention storm.

The paper bounds the region count precisely because RST consults are not
free: "too many regions inflate metadata management overhead and compromise
the final I/O performance" (Sec. III-C). The workloads here isolate that
overhead — every request is a zero-byte read of one shared file, i.e. a
pure open/stat-class consult that moves no data and exercises nothing but
the metadata path: MDS service queueing, ring routing under sharding, and
the client-side layout cache.

:class:`MetadataWorkload` mirrors the IOR generator's three views:

- :meth:`rank_requests` — one rank's (op, offset, size=0) stream;
- :meth:`request_batch` — the whole storm as one columnar batch, with
  optional issue-time spread (a Poisson-like open front instead of a
  single instantaneous burst);
- :meth:`rank_program` — a coroutine per simulated MPI rank issuing the
  opens back to back (the general-path view of the same storm).
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass

import numpy as np

from repro.devices.base import OpType
from repro.middleware.mpi_sim import RankContext
from repro.middleware.mpiio import MPIIOFile
from repro.pfs.batch import RequestBatch
from repro.util.rng import derive_rng
from repro.workloads.traces import TraceRecord, sort_trace


@dataclass(frozen=True)
class MetadataConfig:
    """Open-storm parameters.

    ``n_ops`` opens are split evenly over ``n_processes`` ranks (the count
    must divide evenly, like IOR's file/process constraint). ``spread``
    scatters each op's issue time uniformly over ``[0, spread)`` seconds in
    the batched view — 0.0 (default) is the worst case, every open landing
    at the same instant.
    """

    n_ops: int = 1024
    n_processes: int = 16
    spread: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.n_ops < 1:
            raise ValueError(f"n_ops must be >= 1, got {self.n_ops}")
        if self.n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {self.n_processes}")
        if self.n_ops % self.n_processes != 0:
            raise ValueError(
                f"n_ops ({self.n_ops}) must divide evenly over "
                f"n_processes ({self.n_processes})"
            )
        if self.spread < 0:
            raise ValueError(f"spread must be >= 0, got {self.spread}")

    @property
    def ops_per_process(self) -> int:
        return self.n_ops // self.n_processes

    @property
    def total_bytes(self) -> int:
        """Metadata ops move no data."""
        return 0


class MetadataWorkload:
    """Generates open-storm request streams from a :class:`MetadataConfig`."""

    def __init__(self, config: MetadataConfig):
        self.config = config

    def rank_requests(self, rank: int) -> list[tuple[OpType, int, int]]:
        """The (op, offset, size) stream of ``rank`` — all zero-byte opens."""
        cfg = self.config
        if not (0 <= rank < cfg.n_processes):
            raise ValueError(f"rank {rank} out of range 0..{cfg.n_processes - 1}")
        return [(OpType.READ, 0, 0)] * cfg.ops_per_process

    def request_batch(self) -> RequestBatch:
        """The whole storm as one columnar batch, rank-major.

        With ``spread > 0`` each op's issue time is a uniform draw from
        ``[0, spread)`` on the rank's :func:`~repro.util.rng.derive_rng`
        stream — same seed, same storm, serial or ``--jobs N``.
        """
        cfg = self.config
        n = cfg.n_ops
        issue_times = None
        if cfg.spread > 0:
            issue_times = np.empty(n, dtype=np.float64)
            per = cfg.ops_per_process
            for rank in range(cfg.n_processes):
                rng = derive_rng(cfg.seed, "meta", rank)
                issue_times[rank * per : (rank + 1) * per] = rng.uniform(
                    0.0, cfg.spread, size=per
                )
        return RequestBatch(
            offsets=np.zeros(n, dtype=np.int64),
            sizes=np.zeros(n, dtype=np.int64),
            is_read=np.ones(n, dtype=bool),
            issue_times=issue_times,
        )

    def synthetic_trace(self) -> list[TraceRecord]:
        """The zero-size IOSIG trace a profiling run would produce."""
        records = []
        for rank in range(self.config.n_processes):
            for op, offset, size in self.rank_requests(rank):
                records.append(
                    TraceRecord(
                        pid=1,
                        rank=rank,
                        fd=3,
                        op=op,
                        offset=offset,
                        size=size,
                        timestamp=0.0,
                    )
                )
        return sort_trace(records)

    def rank_program(self, mf: MPIIOFile) -> Callable[[RankContext], Generator]:
        """Build the coroutine each simulated MPI rank runs: opens, back to back."""

        def program(ctx: RankContext) -> Generator:
            requests = self.rank_requests(ctx.rank)
            yield from ctx.barrier()
            for _, offset, size in requests:
                yield from mf.read_at(ctx.rank, offset, size)
            yield from ctx.barrier()
            return len(requests)

        return program
