"""Trace analysis utilities (IOSIG's analysis-side counterpart).

The paper's pipeline only needs offset-sorted requests, but diagnosing
*why* a layout was chosen — or whether a workload is a good HARL candidate
at all — needs summaries: request-size distribution, read/write mix, spatial
coverage, per-rank balance, and sequentiality. :func:`analyze_trace`
computes them all in one pass; :func:`render_report` pretty-prints the
result for examples and the CLI.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.devices.base import OpType
from repro.util.units import format_size
from repro.workloads.traces import TraceRecord


@dataclass(frozen=True)
class SizeHistogram:
    """Power-of-two bucketed request-size histogram."""

    buckets: tuple[tuple[int, int], ...]  # (bucket lower bound, count)

    def most_common(self) -> int:
        """Lower bound of the most populated bucket."""
        return max(self.buckets, key=lambda item: item[1])[0]

    def render(self) -> str:
        total = sum(count for _, count in self.buckets)
        lines = []
        for bound, count in self.buckets:
            bar = "#" * max(1, round(30 * count / total))
            lines.append(f"  {format_size(bound):>8} {count:>7}  {bar}")
        return "\n".join(lines)


@dataclass(frozen=True)
class TraceReport:
    """One-pass summary of an I/O trace."""

    n_requests: int
    total_bytes: int
    read_fraction: float
    mean_size: float
    median_size: float
    size_cv: float
    histogram: SizeHistogram
    file_extent: int
    coverage_fraction: float
    sequential_fraction: float
    n_ranks: int
    rank_imbalance: float  # max rank bytes / mean rank bytes.

    @property
    def is_uniform(self) -> bool:
        """Heuristic: a single region likely suffices (CV below Alg. 1's
        sensitivity once established)."""
        return self.size_cv < 0.1


def _histogram(sizes: np.ndarray) -> SizeHistogram:
    exponents = np.floor(np.log2(sizes)).astype(int)
    counts = Counter(int(e) for e in exponents)
    return SizeHistogram(
        buckets=tuple((2**e, counts[e]) for e in sorted(counts))
    )


def analyze_trace(records: Sequence[TraceRecord]) -> TraceReport:
    """Summarize a trace. Requires at least one record."""
    if not records:
        raise ValueError("cannot analyze an empty trace")
    sizes = np.array([r.size for r in records], dtype=np.int64)
    offsets = np.array([r.offset for r in records], dtype=np.int64)
    reads = sum(1 for r in records if r.op is OpType.READ)

    mean_size = float(sizes.mean())
    size_cv = float(sizes.std() / mean_size) if mean_size > 0 else 0.0

    # Spatial coverage: accessed bytes / extent, via merged intervals.
    spans = sorted(zip(offsets.tolist(), (offsets + sizes).tolist()))
    covered = 0
    cursor = -1
    for start, end in spans:
        if start > cursor:
            covered += end - start
            cursor = end
        elif end > cursor:
            covered += end - cursor
            cursor = end
    extent = int((offsets + sizes).max())

    # Sequentiality: fraction of *issue-order* requests starting exactly
    # where the same rank's previous request ended.
    by_time = sorted(records, key=lambda r: (r.timestamp, r.offset))
    last_end: dict[int, int] = {}
    sequential = 0
    for record in by_time:
        if last_end.get(record.rank) == record.offset:
            sequential += 1
        last_end[record.rank] = record.offset + record.size
    sequential_fraction = sequential / len(records)

    rank_bytes = Counter()
    for record in records:
        rank_bytes[record.rank] += record.size
    per_rank = np.array(list(rank_bytes.values()), dtype=np.float64)
    imbalance = float(per_rank.max() / per_rank.mean()) if per_rank.size else 1.0

    return TraceReport(
        n_requests=len(records),
        total_bytes=int(sizes.sum()),
        read_fraction=reads / len(records),
        mean_size=mean_size,
        median_size=float(np.median(sizes)),
        size_cv=size_cv,
        histogram=_histogram(sizes),
        file_extent=extent,
        coverage_fraction=covered / extent if extent > 0 else 0.0,
        sequential_fraction=sequential_fraction,
        n_ranks=len(rank_bytes),
        rank_imbalance=imbalance,
    )


@dataclass(frozen=True)
class SpatialHeat:
    """Bytes accessed per equal-width slice of the file's extent.

    The visual counterpart of Algorithm 1: request-size phase changes show
    up as steps in per-slice mean request size, which is exactly where the
    CV scan places region boundaries.
    """

    slice_size: int
    bytes_per_slice: tuple[int, ...]
    mean_request_per_slice: tuple[float, ...]

    def render(self) -> str:
        peak = max(self.bytes_per_slice) or 1
        lines = []
        for index, (volume, mean) in enumerate(
            zip(self.bytes_per_slice, self.mean_request_per_slice)
        ):
            bar = "#" * max(0, round(24 * volume / peak))
            mean_label = format_size(int(mean)) if mean else "-"
            lines.append(
                f"  [{format_size(index * self.slice_size):>8}] "
                f"{format_size(volume):>8} (avg req {mean_label:>6})  {bar}"
            )
        return "\n".join(lines)


def spatial_heat(records: Sequence[TraceRecord], n_slices: int = 16) -> SpatialHeat:
    """Bucket accessed bytes and mean request size over ``n_slices`` slices."""
    if not records:
        raise ValueError("cannot analyze an empty trace")
    if n_slices < 1:
        raise ValueError(f"n_slices must be >= 1, got {n_slices}")
    extent = max(r.offset + r.size for r in records)
    slice_size = -(-extent // n_slices)
    volumes = [0] * n_slices
    request_sums = [0] * n_slices
    request_counts = [0] * n_slices
    for record in records:
        start_slice = record.offset // slice_size
        request_sums[min(start_slice, n_slices - 1)] += record.size
        request_counts[min(start_slice, n_slices - 1)] += 1
        cursor = record.offset
        end = record.offset + record.size
        while cursor < end:
            index = min(cursor // slice_size, n_slices - 1)
            piece = min(end, (index + 1) * slice_size) - cursor
            volumes[index] += piece
            cursor += piece
    means = tuple(
        request_sums[i] / request_counts[i] if request_counts[i] else 0.0
        for i in range(n_slices)
    )
    return SpatialHeat(
        slice_size=slice_size,
        bytes_per_slice=tuple(volumes),
        mean_request_per_slice=means,
    )


def render_report(report: TraceReport, title: str = "trace analysis") -> str:
    """Human-readable multi-line rendering of a :class:`TraceReport`."""
    lines = [
        f"=== {title} ===",
        f"requests:       {report.n_requests} from {report.n_ranks} ranks "
        f"({100 * report.read_fraction:.0f}% reads)",
        f"volume:         {format_size(report.total_bytes)} over a "
        f"{format_size(report.file_extent)} extent "
        f"({100 * report.coverage_fraction:.0f}% covered)",
        f"request sizes:  mean {format_size(int(report.mean_size))}, "
        f"median {format_size(int(report.median_size))}, CV {report.size_cv:.2f}"
        + (" (uniform)" if report.is_uniform else ""),
        f"sequentiality:  {100 * report.sequential_fraction:.0f}% of requests "
        f"continue the rank's previous one",
        f"rank balance:   max/mean bytes = {report.rank_imbalance:.2f}",
        "size histogram:",
        report.histogram.render(),
    ]
    return "\n".join(lines)
