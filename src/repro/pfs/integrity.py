"""End-to-end data integrity: per-stripe-unit CRC tags and their accounting.

A real PFS cannot assume a data server returns the bytes that were written:
media errors, firmware bugs, and torn writes silently corrupt stripe units.
The defense is end-to-end checksumming — the client tags every stripe unit
it writes and verifies the tag on every read — combined with region-level
replication for self-healing (see DESIGN.md §11).

The simulation carries no payload bytes, so the model here keeps the
checksum *protocol* honest without storing data:

- every server owns an :class:`ExtentChecksums` store mapping stripe-unit
  blocks of its local address space to CRC tags. A write stamps the
  blocks it covers with the expected tag (a real CRC32 over the block's
  deterministic identity); an injected corruption flips stored tags of
  already-written blocks; a read recomputes the expected tags and compares;
- a mismatch surfaces as the typed :class:`IntegrityError` — never as
  silently wrong bytes — at the instant the payload has fully crossed the
  wire (the client verifies what it received, so detection pays the full
  service + transfer cost first);
- :class:`IntegrityAccounting` is the filesystem-wide counter block,
  snapshotted into the picklable :class:`IntegrityStats` carried on
  :class:`repro.experiments.harness.RunResult`.

Everything stays inert until :meth:`ParallelFileSystem.enable_integrity`
runs (installed automatically by corruption fault schedules and replicated
layouts); with integrity off, the data path pays one attribute comparison
per sub-request and stays byte-identical to a build without this module.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.util.units import KiB

#: Default checksum granularity: one tag per 64 KiB stripe unit, matching
#: the default OrangeFS stripe size.
DEFAULT_BLOCK_SIZE = 64 * KiB

#: XOR mask applied to a stored tag by an injected corruption. Any non-zero
#: mask makes stored != expected; this one is recognizable in debuggers.
_POISON_MASK = 0x5AFEC0DE


class IntegrityError(RuntimeError):
    """A checksummed read came back with mismatching CRC tags.

    Raised instead of returning garbage: the caller either repairs from a
    replica (read path / scrubber) or propagates the typed error — silent
    wrong bytes are never possible. ``server`` names the serving server;
    ``offset``/``size`` address its local (physical) file.
    """

    def __init__(
        self,
        message: str,
        server: str | None = None,
        offset: int | None = None,
        size: int | None = None,
    ):
        super().__init__(message)
        self.server = server
        self.offset = offset
        self.size = size


class ExtentChecksums:
    """Per-stripe-unit CRC tags of one server's local address space.

    Blocks are fixed-size windows of the server's physical file. Only
    *written* blocks carry tags — reading never-written space has nothing
    to verify, exactly like a real client that only checksums stripe units
    it has stored tags for.
    """

    __slots__ = ("server_name", "block_size", "accounting", "_tags")

    def __init__(
        self,
        server_name: str,
        block_size: int = DEFAULT_BLOCK_SIZE,
        accounting: "IntegrityAccounting | None" = None,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.server_name = server_name
        self.block_size = int(block_size)
        self.accounting = accounting
        self._tags: dict[int, int] = {}

    def _expected(self, block: int) -> int:
        """The correct tag of ``block``: CRC32 over its deterministic identity."""
        return zlib.crc32(f"{self.server_name}:{block}".encode())

    def _blocks(self, offset: int, size: int) -> range:
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be >= 0")
        if size == 0:
            return range(0)
        first = offset // self.block_size
        last = (offset + size - 1) // self.block_size
        return range(first, last + 1)

    def __len__(self) -> int:
        return len(self._tags)

    def record_write(self, offset: int, size: int) -> None:
        """Stamp every block of ``[offset, offset+size)`` with its clean tag.

        A write always leaves its blocks verifiable — including a repair
        write over a poisoned block, which this overwrites back to clean.
        """
        tags = self._tags
        for block in self._blocks(offset, size):
            tags[block] = self._expected(block)

    def written_blocks(self) -> list[int]:
        """Sorted block indices that carry tags (written at least once)."""
        return sorted(self._tags)

    def poison_block(self, block: int) -> bool:
        """Corrupt one written block's stored tag; False if never written."""
        tag = self._tags.get(block)
        if tag is None:
            return False
        self._tags[block] = tag ^ _POISON_MASK
        if self.accounting is not None:
            self.accounting.units_poisoned += 1
        return True

    def discard_range(self, offset: int, size: int) -> None:
        """Drop all tags inside ``[offset, offset+size)`` (extent freed).

        A future tenant of released physical space must start untagged —
        inheriting a freed extent's stale (possibly poisoned) tags would
        fabricate mismatches for data that was never written.
        """
        blocks = self._blocks(offset, size)
        for block in [b for b in self._tags if blocks.start <= b < blocks.stop]:
            del self._tags[block]

    def poisoned_blocks(self) -> list[int]:
        """Sorted block indices whose stored tag mismatches (diagnostics)."""
        return sorted(b for b, tag in self._tags.items() if tag != self._expected(b))

    def first_mismatch(self, offset: int, size: int) -> int | None:
        """Byte offset of the first corrupted block in the range, or None.

        Counts one verification per call in the shared accounting (one
        client-side CRC pass over the received payload).
        """
        if self.accounting is not None:
            self.accounting.checks += 1
        tags = self._tags
        for block in self._blocks(offset, size):
            tag = tags.get(block)
            if tag is not None and tag != self._expected(block):
                if self.accounting is not None:
                    self.accounting.mismatches += 1
                return block * self.block_size
        return None


@dataclass(frozen=True)
class IntegrityStats:
    """Picklable integrity summary of one run (``RunResult.integrity``).

    ``checks`` counts checksum verifications on the read path;
    ``mismatches`` the detections; ``replica_reads``/``repaired`` the
    read-path and scrubber self-healing traffic; ``unrepairable`` the
    detections the detecting path could not heal — surfaced as a typed
    :class:`IntegrityError`, reported by the scrubber, or (a poisoned
    replica copy skipped during read repair) left for the next scrub;
    ``units_poisoned`` the stripe units corruption faults actually flipped;
    ``mirrored_writes`` the extra replica sub-request writes.

    Every detection resolves as repaired or unrepairable — the
    :attr:`silent_corruptions` identity below is the subsystem's invariant.
    """

    checks: int = 0
    mismatches: int = 0
    replica_reads: int = 0
    repaired: int = 0
    unrepairable: int = 0
    units_poisoned: int = 0
    mirrored_writes: int = 0

    @property
    def silent_corruptions(self) -> int:
        """Mismatches neither repaired nor surfaced — must always be 0."""
        return self.mismatches - self.repaired - self.unrepairable


class IntegrityAccounting:
    """Filesystem-wide mutable integrity counters (one per PFS).

    Shared by every server's :class:`ExtentChecksums` and by the read-path
    repair logic in :class:`repro.pfs.filesystem.PFSFile`; exported as
    ``integrity.*`` metrics and snapshotted by :meth:`stats`.
    """

    __slots__ = (
        "block_size",
        "checks",
        "mismatches",
        "replica_reads",
        "repaired",
        "unrepairable",
        "units_poisoned",
        "mirrored_writes",
    )

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = int(block_size)
        self.checks = 0
        self.mismatches = 0
        self.replica_reads = 0
        self.repaired = 0
        self.unrepairable = 0
        self.units_poisoned = 0
        self.mirrored_writes = 0

    @property
    def touched(self) -> bool:
        """True once any integrity event happened (metric-export gating)."""
        return bool(
            self.checks
            or self.mismatches
            or self.units_poisoned
            or self.mirrored_writes
        )

    def counters(self) -> dict[str, int]:
        """Counter snapshot for metric export (``integrity.<key>``)."""
        return {
            "checks": self.checks,
            "mismatches": self.mismatches,
            "replica_reads": self.replica_reads,
            "repaired": self.repaired,
            "unrepairable": self.unrepairable,
            "units_poisoned": self.units_poisoned,
            "mirrored_writes": self.mirrored_writes,
        }

    def stats(self) -> IntegrityStats:
        """Freeze the counters into the picklable RunResult payload."""
        return IntegrityStats(**self.counters())
