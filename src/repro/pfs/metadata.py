"""Metadata server: file namespace, RST lookups, and their runtime cost.

In a real PFS a client contacts the MDS once per open and, under HARL, the
MDS consults the RST per request to return region stripe info (Sec. III-F).
The paper worries about exactly this: too many regions inflate "metadata
management overhead and compromise the final I/O performance" (Sec. III-C),
which is why Algorithm 1 bounds the region count.

The model here makes that overhead real:

- each lookup costs ``lookup_latency`` plus ``per_region_latency`` per
  level of a binary search over the file's region table (log2 of the
  region count) — the RST lookup's actual data-structure cost;
- lookups of concurrent clients contend on the MDS service capacity
  (``parallelism`` simultaneous lookups), so metadata pressure grows with
  client count, as on a real MDS.

A :class:`MetadataServer` is usable standalone (pure registry) or attached
to a simulator by the owning filesystem, which enables the queued lookup
path.
"""

from __future__ import annotations

import math
from collections.abc import Generator

from repro.pfs.layout import LayoutPolicy
from repro.simulate.engine import Simulator
from repro.simulate.resources import Resource
from repro.util.validation import check_non_negative


class MetadataServer:
    """Namespace of files → layout policies, with modeled lookup costs."""

    def __init__(
        self,
        lookup_latency: float = 3.0e-5,
        per_region_latency: float = 2.0e-6,
        parallelism: int = 8,
    ):
        check_non_negative("lookup_latency", lookup_latency)
        check_non_negative("per_region_latency", per_region_latency)
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.lookup_latency = float(lookup_latency)
        self.per_region_latency = float(per_region_latency)
        self.parallelism = int(parallelism)
        self._files: dict[str, LayoutPolicy] = {}
        self._service: Resource | None = None
        self.lookup_count = 0

    # -- namespace ---------------------------------------------------------

    def register(self, name: str, layout: LayoutPolicy) -> None:
        """Create a file entry. Raises ``FileExistsError`` on duplicates."""
        if name in self._files:
            raise FileExistsError(f"file already exists in namespace: {name!r}")
        self._files[name] = layout

    def unregister(self, name: str) -> None:
        """Remove a file entry. Raises ``FileNotFoundError`` if absent."""
        try:
            del self._files[name]
        except KeyError:
            raise FileNotFoundError(f"no such file: {name!r}") from None

    def lookup(self, name: str) -> LayoutPolicy:
        """Return the layout for ``name``, counting the lookup."""
        self.lookup_count += 1
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(f"no such file: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def files(self) -> list[str]:
        """Registered file names, sorted."""
        return sorted(self._files)

    # -- runtime lookup cost ------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        """Enable the queued lookup path (called by the owning filesystem)."""
        self._service = Resource(sim, capacity=self.parallelism, name="mds")

    def lookup_time(self, n_regions: int) -> float:
        """Service time of one request's RST consultation.

        Base latency plus a binary-search step per log2(region count) —
        1-region (conventional) files pay only the base.
        """
        if n_regions < 1:
            raise ValueError(f"n_regions must be >= 1, got {n_regions}")
        levels = math.ceil(math.log2(n_regions)) if n_regions > 1 else 0
        return self.lookup_latency + self.per_region_latency * levels

    def consult(self, layout: LayoutPolicy) -> Generator:
        """DES generator: one queued RST lookup for a request on ``layout``."""
        self.lookup_count += 1
        service_time = self.lookup_time(layout.region_count())
        if service_time <= 0:
            return
        if self._service is None:
            raise RuntimeError("MetadataServer not attached to a simulator")
        sim = self._service.sim
        grant = yield self._service.request()
        try:
            yield sim.timeout(service_time)
        finally:
            self._service.release(grant)

    @property
    def utilization_seconds(self) -> float:
        """Total busy time of the MDS service (attached mode only)."""
        return self._service.monitor.snapshot() if self._service else 0.0
