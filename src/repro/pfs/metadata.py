"""Metadata server: file namespace, RST lookups, and their runtime cost.

In a real PFS a client contacts the MDS once per open and, under HARL, the
MDS consults the RST per request to return region stripe info (Sec. III-F).
The paper worries about exactly this: too many regions inflate "metadata
management overhead and compromise the final I/O performance" (Sec. III-C),
which is why Algorithm 1 bounds the region count.

The model here makes that overhead real:

- each lookup costs ``lookup_latency`` plus ``per_region_latency`` per
  level of a binary search over the file's region table (log2 of the
  region count) — the RST lookup's actual data-structure cost;
- lookups of concurrent clients contend on the MDS service capacity
  (``parallelism`` simultaneous lookups), so metadata pressure grows with
  client count, as on a real MDS.

A :class:`MetadataServer` is usable standalone (pure registry) or attached
to a simulator by the owning filesystem, which enables the queued lookup
path.

Crash consistency (DESIGN.md §11): with :meth:`MetadataServer.enable_journal`
on, every namespace mutation is framed into a write-ahead
:class:`~repro.pfs.journal.MetadataJournal` record *before* it applies, and
:meth:`MetadataServer.recover` rebuilds an equal namespace from any clean
prefix of the journal bytes — torn tails are discarded, and migrations that
began but never committed roll back to the pre-migration layout.
"""

from __future__ import annotations

import math
from collections.abc import Generator

from repro.pfs.journal import (
    MetadataJournal,
    RecoveryReport,
    canonical_spec,
    layout_from_spec,
    layout_to_spec,
)
from repro.pfs.layout import LayoutPolicy
from repro.simulate.engine import Simulator
from repro.simulate.resources import Resource
from repro.util.validation import check_non_negative


class MetadataServer:
    """Namespace of files → layout policies, with modeled lookup costs."""

    def __init__(
        self,
        lookup_latency: float = 3.0e-5,
        per_region_latency: float = 2.0e-6,
        parallelism: int = 8,
        profile=None,
    ):
        check_non_negative("lookup_latency", lookup_latency)
        check_non_negative("per_region_latency", per_region_latency)
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        #: Optional :class:`repro.devices.profiles.MdsProfile`. None (the
        #: default) keeps the two legacy constants below, bit-identical to
        #: builds that predate calibrated profiles; a profile prices each
        #: op class (open/stat/relayout) separately.
        self.profile = profile
        if profile is not None:
            lookup_latency = profile.open_latency
            per_region_latency = profile.consult_per_level
        self.lookup_latency = float(lookup_latency)
        self.per_region_latency = float(per_region_latency)
        self.parallelism = int(parallelism)
        self._files: dict[str, LayoutPolicy] = {}
        self._generations: dict[str, int] = {}
        self._service: Resource | None = None
        self.lookup_count = 0
        #: Write-ahead journal; None (default) leaves every mutation
        #: unjournaled and the MDS behaviorally identical to before.
        self.journal: MetadataJournal | None = None
        self._pending_migrations: dict[str, tuple[int, LayoutPolicy]] = {}
        #: Committed replica-location overrides installed by the rebuild
        #: manager: ``(name, generation, region, server, copy) -> target``.
        #: Empty until a rebuild commits, so rebuild-off runs never touch it.
        self._replica_sites: dict[tuple[str, int, int, int, int], int] = {}
        #: In-flight (journaled but uncommitted) rebuild intents; a crash
        #: between begin and commit recovers *without* the move.
        self._pending_rebuilds: dict[tuple[str, int, int, int, int], int] = {}
        #: Set by :meth:`recover` on the recovered instance.
        self.last_recovery: RecoveryReport | None = None

    # -- namespace ---------------------------------------------------------

    def register(self, name: str, layout: LayoutPolicy) -> None:
        """Create a file entry. Raises ``FileExistsError`` on duplicates."""
        if name in self._files:
            raise FileExistsError(f"file already exists in namespace: {name!r}")
        if self.journal is not None:
            self.journal.append(
                "register", name=name, generation=0, layout=layout_to_spec(layout)
            )
        self._files[name] = layout
        self._generations[name] = 0

    def unregister(self, name: str) -> None:
        """Remove a file entry. Raises ``FileNotFoundError`` if absent."""
        if name not in self._files:
            raise FileNotFoundError(f"no such file: {name!r}")
        if self.journal is not None:
            self.journal.append("unregister", name=name)
        del self._files[name]
        self._generations.pop(name, None)
        self._pending_migrations.pop(name, None)
        if self._replica_sites:
            self._replica_sites = {k: v for k, v in self._replica_sites.items() if k[0] != name}
        if self._pending_rebuilds:
            self._pending_rebuilds = {
                k: v for k, v in self._pending_rebuilds.items() if k[0] != name
            }

    def lookup(self, name: str) -> LayoutPolicy:
        """Return the layout for ``name``, counting the lookup."""
        self.lookup_count += 1
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(f"no such file: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def files(self) -> list[str]:
        """Registered file names, sorted."""
        return sorted(self._files)

    def generation_of(self, name: str) -> int:
        """Committed layout generation of ``name`` (0 = as created)."""
        if name not in self._files:
            raise FileNotFoundError(f"no such file: {name!r}")
        return self._generations.get(name, 0)

    def namespace_state(self) -> dict[str, tuple[int, str]]:
        """Canonical ``{name: (generation, layout-spec-json)}`` snapshot.

        The comparison key of the crash-recovery property: two MDS
        instances are namespace-equal iff their ``namespace_state`` dicts
        are equal. Pending (uncommitted) migrations do not appear — they
        have not mutated the namespace yet.
        """
        return {
            name: (self._generations.get(name, 0), canonical_spec(layout))
            for name, layout in self._files.items()
        }

    # -- journaled mutations (DESIGN.md §11) --------------------------------

    def enable_journal(self, journal: MetadataJournal | None = None) -> MetadataJournal:
        """Turn on write-ahead journaling of every namespace mutation.

        Idempotent. Enabling on a non-empty namespace first snapshots the
        existing files as ``register`` records so the journal alone always
        suffices to rebuild the namespace.
        """
        if self.journal is None:
            self.journal = journal if journal is not None else MetadataJournal()
            for name in sorted(self._files):
                self.journal.append(
                    "register",
                    name=name,
                    generation=self._generations.get(name, 0),
                    layout=layout_to_spec(self._files[name]),
                )
        return self.journal

    def record_relayout(self, name: str, layout: LayoutPolicy, generation: int) -> None:
        """Record a completed layout swap (one atomic journaled mutation).

        Called by :meth:`repro.pfs.filesystem.PFSFile.relayout`. While a
        two-phase migration is pending for ``name`` this is a no-op: the
        ``migration_begin`` record already carries the target layout, and
        only ``migration_commit`` makes the swap durable — a crash before
        commit must recover the *old* generation.
        """
        if name not in self._files:
            raise FileNotFoundError(f"no such file: {name!r}")
        if name in self._pending_migrations:
            return
        if self.journal is not None:
            self.journal.append(
                "relayout",
                name=name,
                generation=int(generation),
                layout=layout_to_spec(layout),
            )
        self._files[name] = layout
        self._generations[name] = int(generation)

    def begin_migration(self, name: str, layout: LayoutPolicy, generation: int) -> None:
        """Phase one of the migration generation-swap: journal the intent.

        Mutates nothing — the namespace keeps the old layout/generation
        until :meth:`commit_migration`, so recovery from a crash anywhere
        between begin and commit rolls the migration back.
        """
        if name not in self._files:
            raise FileNotFoundError(f"no such file: {name!r}")
        if name in self._pending_migrations:
            raise RuntimeError(f"migration already pending for {name!r}")
        if self.journal is not None:
            self.journal.append(
                "migration_begin",
                name=name,
                generation=int(generation),
                layout=layout_to_spec(layout),
            )
        self._pending_migrations[name] = (int(generation), layout)

    def commit_migration(self, name: str) -> None:
        """Phase two: the copy finished; swap the namespace durably."""
        try:
            generation, layout = self._pending_migrations.pop(name)
        except KeyError:
            raise RuntimeError(f"no migration pending for {name!r}") from None
        if self.journal is not None:
            self.journal.append("migration_commit", name=name, generation=generation)
        self._files[name] = layout
        self._generations[name] = generation

    def abort_migration(self, name: str) -> None:
        """The copy failed; discard the intent (namespace never changed)."""
        if self._pending_migrations.pop(name, None) is None:
            raise RuntimeError(f"no migration pending for {name!r}")
        if self.journal is not None:
            self.journal.append("migration_abort", name=name)

    # -- journaled rebuild records (DESIGN.md §16) --------------------------

    def record_rebuild_begin(
        self, name: str, generation: int, region: int, server: int, copy: int, target: int
    ) -> None:
        """Phase one of a replica move: journal the intent, mutate nothing.

        ``(region, server, copy)`` names the logical placement (the
        ``copy``-th replica of the stripe column that config-server
        ``server`` owns in ``region``); ``target`` is where the rebuild
        manager is about to re-create it. A crash between begin and commit
        recovers with the *old* replica sites — the half-copied extent is
        garbage the rebuild redoes, never a committed location.
        """
        if name not in self._files:
            raise FileNotFoundError(f"no such file: {name!r}")
        key = (name, int(generation), int(region), int(server), int(copy))
        if self.journal is not None:
            self.journal.append(
                "rebuild_begin",
                name=name,
                generation=int(generation),
                region=int(region),
                server=int(server),
                copy=int(copy),
                target=int(target),
            )
        self._pending_rebuilds[key] = int(target)

    def record_rebuild_commit(
        self,
        name: str,
        generation: int,
        region: int,
        server: int,
        copy: int,
        target: int,
        natural: bool,
    ) -> None:
        """Phase two: the copy landed; swap the replica site durably.

        ``natural=True`` means the placement moved back to its configured
        home (a backfill after a server rejoin) and the override entry is
        *removed*; otherwise the override is installed/replaced.
        """
        key = (name, int(generation), int(region), int(server), int(copy))
        self._pending_rebuilds.pop(key, None)
        if self.journal is not None:
            self.journal.append(
                "rebuild_commit",
                name=name,
                generation=int(generation),
                region=int(region),
                server=int(server),
                copy=int(copy),
                target=int(target),
                natural=bool(natural),
            )
        if natural:
            self._replica_sites.pop(key, None)
        else:
            self._replica_sites[key] = int(target)

    def record_rebuild_abort(
        self, name: str, generation: int, region: int, server: int, copy: int
    ) -> None:
        """The copy failed mid-flight; discard the intent (sites unchanged)."""
        key = (name, int(generation), int(region), int(server), int(copy))
        self._pending_rebuilds.pop(key, None)
        if self.journal is not None:
            self.journal.append(
                "rebuild_abort",
                name=name,
                generation=int(generation),
                region=int(region),
                server=int(server),
                copy=int(copy),
            )

    def replica_sites(self) -> dict[tuple[str, int, int, int, int], int]:
        """Committed replica-location overrides (copy; safe to mutate)."""
        return dict(self._replica_sites)

    @classmethod
    def recover(cls, journal_data: bytes | MetadataJournal, **mds_kwargs) -> "MetadataServer":
        """Rebuild an MDS namespace from journal bytes after a crash.

        Replays the clean record prefix (torn/corrupt tails are discarded by
        :meth:`MetadataJournal.decode`), then rolls back every migration
        whose ``migration_begin`` has no matching commit — the recovered
        namespace is always exactly the pre- or post-state of each journaled
        mutation. ``last_recovery`` on the returned instance reports what
        was replayed, discarded, and rolled back. The recovered MDS has no
        live journal; call :meth:`enable_journal` to resume journaling
        (which re-snapshots the recovered namespace).
        """
        data = (
            journal_data.data
            if isinstance(journal_data, MetadataJournal)
            else bytes(journal_data)
        )
        records, clean = MetadataJournal.decode(data)
        mds = cls(**mds_kwargs)
        pending: dict[str, tuple[int, dict]] = {}
        for record in records:
            op = record["op"]
            name = record["name"]
            if op == "register":
                mds._files[name] = layout_from_spec(record["layout"])
                mds._generations[name] = int(record.get("generation", 0))
            elif op == "unregister":
                mds._files.pop(name, None)
                mds._generations.pop(name, None)
                pending.pop(name, None)
            elif op == "relayout":
                if name in mds._files:
                    mds._files[name] = layout_from_spec(record["layout"])
                    mds._generations[name] = int(record["generation"])
            elif op == "migration_begin":
                pending[name] = (int(record["generation"]), record["layout"])
            elif op == "migration_commit":
                begun = pending.pop(name, None)
                if begun is not None and name in mds._files:
                    generation, layout_spec = begun
                    mds._files[name] = layout_from_spec(layout_spec)
                    mds._generations[name] = generation
            elif op == "migration_abort":
                pending.pop(name, None)
            elif op == "rebuild_begin":
                # Intent only: no mutation until the matching commit.
                pass
            elif op == "rebuild_commit":
                key = (
                    name,
                    int(record["generation"]),
                    int(record["region"]),
                    int(record["server"]),
                    int(record["copy"]),
                )
                if name in mds._files:
                    if record.get("natural"):
                        mds._replica_sites.pop(key, None)
                    else:
                        mds._replica_sites[key] = int(record["target"])
            elif op == "rebuild_abort":
                pass
        mds.last_recovery = RecoveryReport(
            bytes_total=len(data),
            bytes_replayed=clean,
            records_applied=len(records),
            rolled_back=sorted(pending),
        )
        return mds

    # -- runtime lookup cost ------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        """Enable the queued lookup path (called by the owning filesystem)."""
        self._service = Resource(sim, capacity=self.parallelism, name="mds")

    def lookup_time(self, n_regions: int, op: str = "open") -> float:
        """Service time of one request's RST consultation.

        Base latency plus a binary-search step per log2(region count) —
        1-region (conventional) files pay only the base. With a calibrated
        :class:`~repro.devices.profiles.MdsProfile` attached, ``op`` selects
        the op class (open/stat/relayout); without one, every op class
        charges the legacy constants (bit-identical to older builds).
        """
        if self.profile is not None:
            return self.profile.service_time(op, n_regions)
        if n_regions < 1:
            raise ValueError(f"n_regions must be >= 1, got {n_regions}")
        levels = math.ceil(math.log2(n_regions)) if n_regions > 1 else 0
        return self.lookup_latency + self.per_region_latency * levels

    def consult(self, layout: LayoutPolicy, name: str | None = None, op: str = "open") -> Generator:
        """DES generator: one queued RST lookup for a request on ``layout``.

        ``name`` is the file being looked up; the single server ignores it
        (one namespace, no routing) but the sharded
        :class:`~repro.pfs.mds_cluster.MetadataCluster` shares this
        signature and hashes it onto the ring. ``op`` picks the service-time
        class when a calibrated profile is attached.
        """
        self.lookup_count += 1
        service_time = self.lookup_time(layout.region_count(), op=op)
        if service_time <= 0:
            return
        if self._service is None:
            raise RuntimeError("MetadataServer not attached to a simulator")
        sim = self._service.sim
        grant = yield self._service.request()
        try:
            yield sim.timeout(service_time)
        finally:
            self._service.release(grant)

    @property
    def utilization_seconds(self) -> float:
        """Total busy time of the MDS service (attached mode only)."""
        return self._service.monitor.snapshot() if self._service else 0.0
