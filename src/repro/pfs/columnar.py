"""Vectorized columnar replay: the batched fast path without the heap.

The event-heap replay of :mod:`repro.pfs.batch_exec` is exact but still
walks one Python tuple per sub-request hop. For the common batched shape —
a single-op batch on plain FIFO resources — every per-resource schedule is
a *deterministic FIFO recurrence* that numpy can evaluate in bulk:

- a capacity-1 resource with per-job service ``s_i`` and sorted feed times
  ``f_i`` departs at ``d_i = fl(max(f_i, d_{i-1}) + s_i)``;
- a capacity-``c`` resource with *constant* service ``L`` decomposes into
  ``c`` independent such chains (job ``j`` starts when job ``j - c``
  departs), one per residue lane of the feed order.

IEEE-754 forbids closed forms (every ``+`` must round in sequence), but
``np.add.accumulate`` is an exact sequential left fold, so each busy period
evaluates as one vectorized cumulative sum; a restart loop re-anchors at
idle gaps. Utilization intervals fall out arithmetically: for capacity 1
every departure closes one interval (``d_i - g_i``); for capacity > 1 the
interval endpoints are recovered from the queue-depth prefix counts.

Bit-exactness contract: completion times, busy-time floats (same summation
order), resource counters, device counters/state, and device RNG streams
(drawn in grant order with vectorized ``Generator.uniform`` calls, which
are bitwise-identical to the equivalent scalar call sequence) all match the
general DES path. Whenever a precondition cannot be established cheaply —
varying NIC service at capacity > 1, an exact feed/departure time collision
on a multi-slot resource (tie resolution would depend on heap sequence
numbers), an SSD write reaching a whole GC window, or too many idle gaps
for the restart loop — the engine *bails*: it restores any consumed device
RNG state and returns ``None``, and the caller falls back to the event-heap
replay (still exact, still fast).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.hdd import HDDModel
from repro.devices.ssd import SSDModel

__all__ = ["replay_columnar"]

#: Busy-period restart loop: first/maximum np.add.accumulate span. Blocks
#: start small (an idle gap wastes little) and double while a busy period
#: keeps going (a long dense stretch amortizes the Python loop away).
_BLOCK_MIN = 32
_BLOCK_MAX = 65536
#: Flat per-restart budget charge, so the wasted-work budget also bounds
#: Python loop iterations on pathologically alternating feeds.
_ITER_COST = 8


def _chain(feed: np.ndarray, svc: np.ndarray, budget: list) -> np.ndarray | None:
    """Departures of a capacity-1 FIFO: ``d_i = fl(max(f_i, d_{i-1}) + s_i)``.

    ``feed`` must be non-decreasing. The two easy regimes are fully
    vectorized: a queue-free feed (every job finds the resource idle, found
    by one comparison pass) is ``feed + svc`` elementwise, and long busy
    periods evaluate as exact sequential folds (``np.add.accumulate``) in
    geometrically growing blocks. ``budget`` is a single-element mutable
    wasted-work allowance shared across the whole replay; feeds that mix
    idle gaps and short busy bursts at scale exhaust it and return None
    (the caller falls back to the event-heap tier).
    """
    n = feed.shape[0]
    done_free = feed + svc
    if n <= 1 or not (feed[1:] < done_free[:-1]).any():
        # Queue-free: by induction every grant is the arrival itself.
        return done_free
    done = np.empty(n, dtype=np.float64)
    h = 0
    prev = -np.inf
    block = _BLOCK_MIN
    while h < n:
        g0 = feed[h] if feed[h] > prev else prev
        end = min(n, h + block)
        acc = np.add.accumulate(np.concatenate(([g0], svc[h:end])))
        cand = acc[1:]  # done[h:end] assuming one busy period
        viol = feed[h + 1 : end] > cand[:-1]
        if viol.any():
            stop = h + 1 + int(np.argmax(viol))
            block = _BLOCK_MIN  # idle gap: next busy period starts small
        else:
            stop = end
            block = min(block * 2, _BLOCK_MAX)  # still busy: amortize
        budget[0] -= (end - stop) + _ITER_COST
        if budget[0] < 0:
            return None
        done[h:stop] = cand[: stop - h]
        prev = done[stop - 1]
        h = stop
    return done


def _prev_done(done: np.ndarray, lag: int) -> np.ndarray:
    """``done`` shifted by ``lag`` with ``-inf`` fill (departure of job i-lag)."""
    out = np.empty_like(done)
    out[:lag] = -np.inf
    out[lag:] = done[:-lag] if lag < done.shape[0] else done[:0]
    return out


def _fifo_const(
    feed: np.ndarray, service: float, cap: int, budget: list
) -> tuple[np.ndarray, np.ndarray] | None:
    """Departures and busy deltas of a FIFO with constant service time.

    Returns ``(done, deltas)`` with deltas in interval-closure order, or
    None on a budget/tie bail. Capacity > 1 requires no exact feed/departure
    collisions (the general path resolves those by event sequence numbers).
    """
    n = feed.shape[0]
    if cap == 1:
        done = _chain(feed, np.full(n, service), budget)
        if done is None:
            return None
        return done, done - np.maximum(feed, _prev_done(done, 1))
    done = np.empty(n, dtype=np.float64)
    for lane in range(min(cap, n)):
        lane_feed = feed[lane::cap]
        lane_done = _chain(lane_feed, np.full(lane_feed.shape[0], service), budget)
        if lane_done is None:
            return None
        done[lane::cap] = lane_done
    if np.isin(feed, done).any():
        return None  # exact feed/departure tie: ordering is seq-dependent
    deltas = _multislot_deltas(feed, done, cap)
    if deltas is None:
        return None
    return done, deltas


def _multislot_deltas(feed: np.ndarray, done: np.ndarray, cap: int) -> np.ndarray | None:
    """Busy-interval deltas of a capacity-``cap`` FIFO from its schedule.

    With no feed/departure ties, processing order is unambiguous and queue
    depth before each event is a prefix count: a departure closes an
    interval iff depth 1, a grant opens one iff depth 0. A closure whose
    departure regrants a waiter reopens at the same instant (matching
    ``Resource.release``'s close-then-grant).
    """
    n = feed.shape[0]
    queued = feed <= _prev_done(done, cap)
    feed_direct = feed[~queued]
    qpre = np.concatenate(([0], np.cumsum(queued)))
    k = np.arange(n)
    # Depth just before departure k's release: grants issued so far (direct
    # feeds strictly earlier, plus waiters regranted by departures < k)
    # minus the k departures already processed.
    depth = (
        np.searchsorted(feed_direct, done, side="left")
        + qpre[np.minimum(k + cap, n)]
        - k
    )
    closes_mask = depth == 1
    closes = done[closes_mask]
    # Opens: direct grants arriving at depth 0 ...
    r = np.searchsorted(done, feed_direct, side="left")
    m = np.arange(feed_direct.shape[0])
    open_direct = feed_direct[(m + qpre[np.minimum(r + cap, n)] - r) == 0]
    # ... plus close-and-reopen instants (departure k regrants waiter k+cap).
    kk = k[closes_mask]
    kk = kk[kk + cap < n]
    reopen = done[kk[queued[kk + cap]]]
    opens = np.sort(np.concatenate((open_direct, reopen)))
    if opens.shape[0] != closes.shape[0]:
        return None  # schedule did not quiesce as analyzed; use the heap
    return closes - opens


def _device_services(
    device, op_is_read: bool, offsets: np.ndarray, sizes: np.ndarray, sizes_f: np.ndarray
):
    """Vectorized ``service_breakdown`` stream of one device, in grant order.

    Returns ``(service_times, new_head, new_gc)`` — deferred device state —
    or None when exactness cannot be guaranteed (SSD write sizes reaching a
    whole GC window). Advances the device RNG exactly as the equivalent
    scalar call sequence would; the caller snapshots/restores it on bail.
    """
    n = sizes.shape[0]
    new_head = None
    new_gc = None
    if type(device) is HDDModel:
        if device.positional:
            heads = np.empty_like(offsets)
            heads[0] = device._head_position
            np.add(offsets[:-1], sizes[:-1], out=heads[1:])
            distance = np.abs(offsets - heads) / float(device.capacity)
            seek_span = device.alpha_max - device.alpha_min
            startup = device.alpha_min + (0.6 * seek_span) * np.sqrt(
                np.minimum(1.0, distance)
            )
            startup = startup + device.rng.uniform(0.0, 0.4 * seek_span, n)
            new_head = int(offsets[-1] + sizes[-1])
        else:
            startup = device.rng.uniform(device.alpha_min, device.alpha_max, n)
        transfer = sizes_f * device.beta
    else:  # SSDModel (caller verified the exact type)
        if op_is_read:
            startup = device.rng.uniform(device.read_alpha_min, device.read_alpha_max, n)
            beta = device.beta_read
        else:
            startup = device.rng.uniform(device.write_alpha_min, device.write_alpha_max, n)
            window = device.gc_window
            if window > 0:
                # The cumsum/floor-divide crossing test matches the scalar
                # subtract-once bookkeeping only while the counter stays in
                # [0, window) between writes; a single giant write (here or
                # before this batch) breaks that invariant.
                if int(sizes.max()) >= window or device._bytes_since_gc >= window:
                    return None
                counter = device._bytes_since_gc + np.cumsum(sizes)
                before = np.empty_like(counter)
                before[0] = device._bytes_since_gc
                before[1:] = counter[:-1]
                crossed = (counter // window) > (before // window)
                startup = np.where(crossed, startup + device.gc_pause, startup)
                new_gc = int(counter[-1] % window)
            beta = device.beta_write
        engaged = np.minimum(
            device.n_channels, np.maximum(1, -(-sizes // device.channel_chunk))
        )
        speedup = 0.6 + 0.4 * (engaged / device.n_channels)
        transfer = sizes_f * beta / speedup
    slowdown = device.slowdown
    return startup * slowdown + transfer * slowdown, new_head, new_gc


@dataclass
class _ServerPass:
    """Computed schedule of one server, held until the commit phase."""

    server: object
    completion: np.ndarray  # per-job final-stage departure, feed order
    nic_deltas: np.ndarray
    disk_deltas: np.ndarray
    n_jobs: int
    total_bytes: int
    new_head: int | None
    new_gc: int | None


def _server_pass(server, feed, offsets, sizes, op_is_read: bool, budget: list):
    """Full NIC+disk schedule of one server's jobs (feed order). None = bail."""
    net = server.network
    sizes_f = sizes.astype(np.float64)
    transfer = (net.latency + sizes_f * net.unit_time) * net.congestion
    cap = server.nic.capacity
    if cap > 1 and sizes.shape[0] > 1 and transfer.min() != transfer.max():
        return None  # varying service on a multi-slot NIC: lanes don't apply

    def nic_stage(nic_feed):
        if cap == 1:
            done = _chain(nic_feed, transfer, budget)
            if done is None:
                return None
            return done, done - np.maximum(nic_feed, _prev_done(done, 1))
        return _fifo_const(nic_feed, float(transfer[0]), cap, budget)

    if op_is_read:
        svc = _device_services(server.device, True, offsets, sizes, sizes_f)
        if svc is None:
            return None
        svc, new_head, new_gc = svc
        disk_done = _chain(feed, svc, budget)
        if disk_done is None:
            return None
        disk_deltas = disk_done - np.maximum(feed, _prev_done(disk_done, 1))
        nic = nic_stage(disk_done)
        if nic is None:
            return None
        nic_done, nic_deltas = nic
        completion = nic_done
    else:
        nic = nic_stage(feed)
        if nic is None:
            return None
        nic_done, nic_deltas = nic
        svc = _device_services(server.device, False, offsets, sizes, sizes_f)
        if svc is None:
            return None
        svc, new_head, new_gc = svc
        disk_done = _chain(nic_done, svc, budget)
        if disk_done is None:
            return None
        disk_deltas = disk_done - np.maximum(nic_done, _prev_done(disk_done, 1))
        completion = disk_done
    return _ServerPass(
        server=server,
        completion=completion,
        nic_deltas=nic_deltas,
        disk_deltas=disk_deltas,
        n_jobs=int(sizes.shape[0]),
        total_bytes=int(sizes.sum()),
        new_head=new_head,
        new_gc=new_gc,
    )


def _fold_busy(monitor, deltas: np.ndarray) -> None:
    """Fold interval deltas into a monitor in closure order, exactly.

    ``np.add.accumulate`` is a sequential left fold, so seeding it with the
    current ``busy_time`` reproduces the general path's ``+=`` sequence
    bit for bit.
    """
    if deltas.shape[0]:
        acc = np.add.accumulate(np.concatenate(([monitor.busy_time], deltas)))
        monitor.busy_time = float(acc[-1])


def eligible(pfs, batch) -> bool:
    """Static columnar preconditions (cheap; dynamic ones bail at run time)."""
    if batch.single_op is None or len(batch) == 0:
        return False
    for server in pfs.servers:
        if type(server.device) not in (HDDModel, SSDModel):
            return False
    return True


def replay_columnar(
    pfs,
    handle,
    jobs,
    op_is_read: bool,
    plan,
) -> np.ndarray | None:
    """Vectorized replay of a materialized single-op job set.

    ``plan`` is the batch's :class:`repro.pfs.batch_exec._MdsPlan`: queue
    mode runs the (owner shard's) lookup service as a constant-service
    FIFO fold over the planned entry instants; cache fill/hit modes arrive
    pre-solved — every request spawns at its planned instant and the MDS
    stage is skipped entirely.

    Returns per-request absolute completion times (batch order) and commits
    all resource/device/MDS state on success, or returns ``None`` with no
    observable state change (device RNGs restored) so the caller can fall
    back to the event-heap replay. The plan's timing-independent counters
    (lookup/hop/cache tallies) are NOT committed here — the caller applies
    them via :func:`repro.pfs.batch_exec._commit_mds` after either tier.

    The caller guarantees :func:`repro.pfs.batch_exec.fast_path_blocker`
    returned None and :func:`eligible` is True.
    """
    n_jobs = jobs.server.shape[0]

    # -- MDS stage: constant lookup, FIFO slots, entry-order feed ----------
    lookup = plan.lookup
    mds_deltas = None
    service = plan.service
    if plan.mode == "queue":
        n = plan.entry_times.shape[0]
        budget = [32 * (n_jobs + n) + 65536]
        order = plan.entry_order
        feed = plan.entry_times if order is None else plan.entry_times[order]
        if lookup > 0:
            res = _fifo_const(feed, lookup, service.capacity, budget)
            if res is None:
                return None
            exits, mds_deltas = res
        else:
            exits = feed
        spawn = np.empty(n, dtype=np.float64)
        if order is None:
            spawn[:] = exits
        else:
            spawn[order] = exits
    else:
        n = plan.spawn_times.shape[0]
        budget = [32 * (n_jobs + n) + 65536]
        spawn = plan.spawn_times.copy()

    # -- per-server NIC/disk schedules ------------------------------------
    passes: list[_ServerPass] = []
    completion_jobs = np.empty(n_jobs, dtype=np.float64)
    snapshots = []
    if n_jobs:
        job_spawn = spawn[jobs.req]
        order = np.argsort(jobs.server, kind="stable")
        sorted_server = jobs.server[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_server[1:] != sorted_server[:-1]))
        )
        stops = np.concatenate((starts[1:], [n_jobs]))
        for a, b in zip(starts.tolist(), stops.tolist()):
            idx = order[a:b]
            server = pfs.servers[int(sorted_server[a])]
            snapshots.append((server.device, server.device.rng.bit_generator.state))
            result = _server_pass(
                server,
                job_spawn[idx],
                jobs.offset[idx],
                jobs.size[idx],
                op_is_read,
                budget,
            )
            if result is None:
                for device, state in snapshots:
                    device.rng.bit_generator.state = state
                return None
            completion_jobs[idx] = result.completion
            passes.append(result)

    # -- per-request completion -------------------------------------------
    completion = spawn.copy()  # requests with no sub-requests finish at MDS exit
    if n_jobs:
        req = jobs.req
        run_starts = np.flatnonzero(np.concatenate(([True], req[1:] != req[:-1])))
        completion[req[run_starts]] = np.maximum.reduceat(completion_jobs, run_starts)

    # -- commit ------------------------------------------------------------
    for p in passes:
        server = p.server
        _fold_busy(server.nic.monitor, p.nic_deltas)
        server.nic.granted_count += p.n_jobs
        _fold_busy(server.disk.monitor, p.disk_deltas)
        server.disk.granted_count += p.n_jobs
        server.bytes_served += p.total_bytes
        server.subrequests_served += p.n_jobs
        device = server.device
        if op_is_read:
            device.bytes_read += p.total_bytes
        else:
            device.bytes_written += p.total_bytes
        device.requests_served += p.n_jobs
        if p.new_head is not None:
            device._head_position = p.new_head
        if p.new_gc is not None:
            device._bytes_since_gc = p.new_gc
    if mds_deltas is not None:
        _fold_busy(service.monitor, mds_deltas)
        service.granted_count += n
    return completion
