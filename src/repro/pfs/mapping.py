"""Round-robin striping math for heterogeneous stripe sizes.

The layout under study (paper Sec. III-D): ``M`` HServers with stripe ``h``
and ``N`` SServers with stripe ``s``, striped round-robin. One *round* is
``S = M·h + N·s`` logical bytes; within a round, bytes ``[i·h, (i+1)·h)`` go
to HServer ``i`` and bytes ``[M·h + j·s, M·h + (j+1)·s)`` go to SServer
``j``. Each server stores its stripes back-to-back in its local file, so a
contiguous logical request maps to **at most one contiguous physical
extent per server** (middle rounds always cover every window fully).

The whole module rests on one closed form. For a server whose in-round
window is ``[a, b)`` (width ``w = b − a``), the number of that server's
bytes below logical offset ``x`` is::

    F(x) = floor(x / S) · w + clamp(x mod S − a, 0, w)

``F`` is monotone and exactly partitions bytes among servers, so a request
``[o, o + r)`` gives server ``i`` the physical extent
``[F_i(o), F_i(o + r))``. Everything else — sub-request decomposition for
the simulator, the critical parameters ``(s_m, s_n, m, n)`` for the cost
model, scalar or vectorized — derives from this.

The paper's Figure 5 publishes case-analysis closed forms for case (a)
(request begins and ends on HServers); :func:`paper_case_a_params`
implements them verbatim so tests can compare against the exact math.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.util.units import format_size


@dataclass(frozen=True)
class StripingConfig:
    """A (M, N, h, s) striping choice for one file or file region.

    ``n_hservers``/``n_sservers`` are the paper's M and N; ``hstripe`` and
    ``sstripe`` are h and s in bytes. ``h == 0`` (or ``s == 0``) excludes
    that server class entirely — the paper's Fig. 9 optimum {0K, 64K} places
    data on SServers only.
    """

    n_hservers: int
    n_sservers: int
    hstripe: int
    sstripe: int

    def __post_init__(self):
        if self.n_hservers < 0 or self.n_sservers < 0:
            raise ValueError("server counts must be >= 0")
        if self.hstripe < 0 or self.sstripe < 0:
            raise ValueError("stripe sizes must be >= 0")
        if self.round_size <= 0:
            raise ValueError(
                "striping config distributes no data: need M*h + N*s > 0 "
                f"(M={self.n_hservers}, N={self.n_sservers}, "
                f"h={self.hstripe}, s={self.sstripe})"
            )

    @property
    def round_size(self) -> int:
        """Bytes per striping round: S = M·h + N·s."""
        return self.n_hservers * self.hstripe + self.n_sservers * self.sstripe

    @property
    def n_servers(self) -> int:
        """Total server count M + N."""
        return self.n_hservers + self.n_sservers

    def server_window(self, server_id: int) -> tuple[int, int]:
        """In-round byte window ``[a, b)`` of ``server_id``.

        Servers ``0 .. M-1`` are HServers; ``M .. M+N-1`` are SServers,
        following the paper's numbering.
        """
        if not (0 <= server_id < self.n_servers):
            raise IndexError(f"server_id {server_id} out of range 0..{self.n_servers - 1}")
        if server_id < self.n_hservers:
            a = server_id * self.hstripe
            return (a, a + self.hstripe)
        j = server_id - self.n_hservers
        a = self.n_hservers * self.hstripe + j * self.sstripe
        return (a, a + self.sstripe)

    def is_hserver(self, server_id: int) -> bool:
        """True if ``server_id`` indexes an HServer."""
        return 0 <= server_id < self.n_hservers

    # -- generic per-class interface (shared with the multi-tier configs) --

    @property
    def class_counts(self) -> tuple[int, ...]:
        """Servers per performance class: (M, N)."""
        return (self.n_hservers, self.n_sservers)

    @property
    def stripes(self) -> tuple[int, ...]:
        """Stripe size per class: (h, s). The RST merges on this tuple."""
        return (self.hstripe, self.sstripe)

    def class_of(self, server_id: int) -> int:
        """Performance-class index of a server (0 = HServer, 1 = SServer)."""
        return 0 if self.is_hserver(server_id) else 1

    def decompose(self, offset: int, size: int) -> list["SubRequest"]:
        """Polymorphic entry point used by the filesystem fan-out."""
        return decompose(self, offset, size)

    def to_dict(self) -> dict:
        """JSON-serializable form (see ``config_from_dict``)."""
        return {
            "type": "hybrid",
            "n_hservers": self.n_hservers,
            "n_sservers": self.n_sservers,
            "hstripe": self.hstripe,
            "sstripe": self.sstripe,
        }

    def describe(self) -> str:
        """Figure-legend style description, e.g. ``"36K-148K"`` or ``"64K"``."""
        h, s = format_size(self.hstripe), format_size(self.sstripe)
        if self.hstripe == self.sstripe:
            return h
        return f"{h}-{s}"


@dataclass(frozen=True)
class SubRequest:
    """One server's share of a logical request.

    ``offset`` and ``size`` address the server's *local* file (physical
    bytes); ``logical_offset`` records where the extent starts in the logical
    file, which the simulator's positional device models use.
    """

    server_id: int
    offset: int
    size: int
    logical_offset: int


@dataclass(frozen=True)
class CriticalParams:
    """The cost model's four critical parameters for one request.

    ``s_m``/``s_n`` — largest sub-request size on any HServer / SServer;
    ``m``/``n`` — number of HServers / SServers receiving a sub-request.
    """

    s_m: int
    s_n: int
    m: int
    n: int


def _server_bytes_below(x: int, a: int, b: int, round_size: int) -> int:
    """F(x): bytes of the server with window [a, b) below logical offset x."""
    w = b - a
    if w == 0:
        return 0
    full, rem = divmod(x, round_size)
    return full * w + min(max(rem - a, 0), w)


@lru_cache(maxsize=1024)
def _window_table(config: StripingConfig) -> tuple[tuple[int, int], ...]:
    """Per-server in-round windows, computed once per config.

    ``decompose`` runs once per simulated request; recomputing every
    server's window (and the round size behind it) per call dominated its
    profile. Configs are small frozen dataclasses, so a bounded cache keyed
    on the config itself is safe.
    """
    return tuple(config.server_window(i) for i in range(config.n_servers))


def decompose(config: StripingConfig, offset: int, size: int) -> list[SubRequest]:
    """Split logical request ``[offset, offset+size)`` into sub-requests.

    Returns one :class:`SubRequest` per touched server, ordered by server id.
    The sub-request sizes always sum to ``size`` and each is a single
    contiguous extent in the server's local file.
    """
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if size == 0:
        return []
    S = config.round_size
    full_start, rem_start = divmod(offset, S)
    full_end, rem_end = divmod(offset + size, S)
    subs: list[SubRequest] = []
    append = subs.append
    for server_id, (a, b) in enumerate(_window_table(config)):
        w = b - a
        if w == 0:
            continue
        rel = rem_start - a
        p_start = full_start * w + (0 if rel < 0 else (w if rel > w else rel))
        rel = rem_end - a
        p_end = full_end * w + (0 if rel < 0 else (w if rel > w else rel))
        if p_end > p_start:
            # Logical offset where this server's extent begins: the first
            # logical byte >= offset that falls inside the server's window.
            if a <= rem_start < b:
                logical = offset
            elif rem_start < a:
                logical = full_start * S + a
            else:
                logical = (full_start + 1) * S + a
            append(
                SubRequest(
                    server_id=server_id,
                    offset=p_start,
                    size=p_end - p_start,
                    logical_offset=logical,
                )
            )
    return subs


def decompose_batch(
    config: StripingConfig,
    offsets: np.ndarray,
    sizes: np.ndarray,
) -> list[list[SubRequest]]:
    """Vectorized :func:`decompose` over many requests in one numpy pass.

    Args:
        config: the striping choice shared by every request.
        offsets, sizes: integer arrays of equal length (bytes).

    Returns:
        One ``decompose``-identical sub-request list per input request, in
        input order. This is the multi-request submission path: the closed
        form ``F`` is evaluated as one (n_requests × n_servers) array
        operation instead of per request, which is what
        :meth:`repro.pfs.filesystem.PFSFile.request_many` and batch-oriented
        workload drivers use.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if offsets.shape != sizes.shape or offsets.ndim != 1:
        raise ValueError("offsets and sizes must be equal-length 1-D arrays")
    if offsets.size and (int(offsets.min()) < 0 or int(sizes.min()) < 0):
        raise ValueError("offsets and sizes must be >= 0")
    if offsets.size == 0:
        return []
    S = config.round_size
    windows = np.asarray(_window_table(config), dtype=np.int64)  # (n_servers, 2)
    a = windows[:, 0][None, :]
    w = (windows[:, 1] - windows[:, 0])[None, :]

    full_start, rem_start = np.divmod(offsets[:, None], S)
    full_end, rem_end = np.divmod((offsets + sizes)[:, None], S)
    p_start = full_start * w + np.clip(rem_start - a, 0, w)
    p_end = full_end * w + np.clip(rem_end - a, 0, w)
    sub_sizes = p_end - p_start

    # First logical byte >= offset inside each server's window (see decompose).
    b = windows[:, 1][None, :]
    logical = np.where(
        rem_start < a,
        full_start * S + a,
        np.where(rem_start >= b, (full_start + 1) * S + a, offsets[:, None]),
    )

    # Assemble from plain Python lists: per-element numpy scalar indexing
    # costs more than the whole vectorized math above at realistic batch
    # sizes, while tolist() converts each matrix in one C pass.
    out: list[list[SubRequest]] = []
    for row_start, row_sizes, row_logical in zip(
        p_start.tolist(), sub_sizes.tolist(), logical.tolist()
    ):
        out.append(
            [
                SubRequest(
                    server_id=sid,
                    offset=row_start[sid],
                    size=sub_size,
                    logical_offset=row_logical[sid],
                )
                for sid, sub_size in enumerate(row_sizes)
                if sub_size > 0
            ]
        )
    return out


def decompose_batch_flat(
    config: StripingConfig,
    offsets: np.ndarray,
    sizes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`decompose_batch` emitted as flat sub-request columns.

    Returns ``(piece_index, server_id, sub_offset, sub_size)`` int64 arrays,
    one entry per non-empty sub-request, ordered by ``(input piece,
    server_id)`` — the exact order in which :func:`decompose` would emit
    them per piece. No per-request Python lists are materialized, which is
    what the columnar replay engine consumes directly.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if offsets.shape != sizes.shape or offsets.ndim != 1:
        raise ValueError("offsets and sizes must be equal-length 1-D arrays")
    if offsets.size and (int(offsets.min()) < 0 or int(sizes.min()) < 0):
        raise ValueError("offsets and sizes must be >= 0")
    empty = np.empty(0, dtype=np.int64)
    if offsets.size == 0:
        return empty, empty, empty, empty
    S = config.round_size
    windows = np.asarray(_window_table(config), dtype=np.int64)  # (n_servers, 2)
    a = windows[:, 0][None, :]
    w = (windows[:, 1] - windows[:, 0])[None, :]

    full_start, rem_start = np.divmod(offsets[:, None], S)
    full_end, rem_end = np.divmod((offsets + sizes)[:, None], S)
    p_start = full_start * w + np.clip(rem_start - a, 0, w)
    sub_sizes = full_end * w + np.clip(rem_end - a, 0, w) - p_start

    # nonzero over the (piece × server) matrix yields row-major order:
    # piece-ascending, server-ascending within a piece — decompose's order.
    piece, server = np.nonzero(sub_sizes > 0)
    return (
        piece.astype(np.int64, copy=False),
        server.astype(np.int64, copy=False),
        p_start[piece, server],
        sub_sizes[piece, server],
    )


def critical_params(config: StripingConfig, offset: int, size: int) -> CriticalParams:
    """Exact (s_m, s_n, m, n) for one request under ``config``."""
    s_m = s_n = 0
    m = n = 0
    for sub in decompose(config, offset, size):
        if config.is_hserver(sub.server_id):
            m += 1
            s_m = max(s_m, sub.size)
        else:
            n += 1
            s_n = max(s_n, sub.size)
    return CriticalParams(s_m=s_m, s_n=s_n, m=m, n=n)


def critical_params_vectorized(
    config: StripingConfig,
    offsets: np.ndarray,
    sizes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized (s_m, s_n, m, n) over arrays of requests.

    Args:
        config: the striping choice under evaluation.
        offsets, sizes: integer arrays of equal length (bytes).

    Returns:
        ``(s_m, s_n, m, n)`` int64 arrays, one entry per request. This is the
        inner loop of Algorithm 2's grid search: one call per (h, s) pair
        evaluates every request of a region at numpy speed.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if offsets.shape != sizes.shape:
        raise ValueError("offsets and sizes must have the same shape")
    if np.any(offsets < 0) or np.any(sizes < 0):
        raise ValueError("offsets and sizes must be >= 0")
    S = config.round_size
    n_req = offsets.shape[0]
    ends = offsets + sizes

    windows = np.array(
        [config.server_window(i) for i in range(config.n_servers)], dtype=np.int64
    )  # (n_servers, 2)
    a = windows[:, 0][None, :]  # (1, n_servers)
    w = (windows[:, 1] - windows[:, 0])[None, :]

    def batched_f(x: np.ndarray) -> np.ndarray:
        x = x[:, None]  # (n_req, 1)
        full, rem = np.divmod(x, S)
        return full * w + np.clip(rem - a, 0, w)

    bytes_per_server = batched_f(ends) - batched_f(offsets)  # (n_req, n_servers)

    M = config.n_hservers
    h_bytes = bytes_per_server[:, :M]
    s_bytes = bytes_per_server[:, M:]
    s_m = h_bytes.max(axis=1) if M > 0 else np.zeros(n_req, dtype=np.int64)
    s_n = s_bytes.max(axis=1) if config.n_sservers > 0 else np.zeros(n_req, dtype=np.int64)
    m = (h_bytes > 0).sum(axis=1) if M > 0 else np.zeros(n_req, dtype=np.int64)
    n = (s_bytes > 0).sum(axis=1) if config.n_sservers > 0 else np.zeros(n_req, dtype=np.int64)
    return s_m, s_n, m.astype(np.int64), n.astype(np.int64)


def paper_case_a_params(config: StripingConfig, offset: int, size: int) -> CriticalParams:
    """Figure 5's closed forms for case (a): request begins AND ends on HServers.

    Implemented verbatim from the paper (including its notation
    ``Δr = r_e − r_b``, ``Δc = n_e − n_b``) for fidelity testing against
    :func:`critical_params`. Only valid when both the beginning and ending
    sub-requests land on HServers and h > 0; raises ``ValueError`` otherwise.
    """
    M, N = config.n_hservers, config.n_sservers
    h, s = config.hstripe, config.sstripe
    if h <= 0 or M <= 0:
        raise ValueError("case (a) requires M > 0 and h > 0")
    S = config.round_size
    o, r = offset, size
    r_b = o // S
    r_e = (o + r) // S
    l_b = o - r_b * S
    l_e = (o + r) - r_e * S
    if l_b >= M * h or l_e > M * h:
        raise ValueError("request does not begin and end on HServers (not case (a))")
    n_b = l_b // h
    # The ending sub-request's server: l_e is an exclusive bound, so the last
    # byte sits at l_e - 1 (the paper's floor(l_e/h) with l_e on a stripe
    # boundary would point one server too far).
    n_e = (l_e - 1) // h if l_e > 0 else -1
    s_b = h - l_b % h
    s_e = l_e - n_e * h if l_e > 0 else 0
    delta_r = r_e - r_b
    delta_c = n_e - n_b

    if delta_r == 0:
        if delta_c == 0:
            return CriticalParams(s_m=min(s_b, r), s_n=0, m=1, n=0)
        if delta_c == 1:
            return CriticalParams(s_m=max(s_b, s_e), s_n=0, m=delta_c + 1, n=0)
        return CriticalParams(s_m=h, s_n=0, m=delta_c + 1, n=0)
    # delta_r >= 1: the request wraps at least one full round boundary.
    s_n = delta_r * s if N > 0 else 0
    n = N if N > 0 and s > 0 else 0
    if delta_c == 0:
        s_m = max(delta_r * h - h + s_b + s_e, delta_r * h)
        return CriticalParams(s_m=s_m, s_n=s_n, m=M, n=n)
    if n_b + 1 == M and n_e == 0:
        s_m = max(delta_r * h - h + s_b, delta_r * h - h + s_e)
        m = 2 if delta_r == 1 else M
        return CriticalParams(s_m=s_m, s_n=s_n, m=m, n=n)
    s_m = delta_r * h
    m = (M + 1 + delta_c) if delta_c < -1 else M
    return CriticalParams(s_m=s_m, s_n=s_n, m=m, n=n)
