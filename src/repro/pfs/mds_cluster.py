"""Sharded, fault-tolerant metadata service with journal-replayed failover.

The single :class:`~repro.pfs.metadata.MetadataServer` is the reproduction's
scalability wall and single point of failure: every RST consult of every
client funnels through one service queue, and a crash loses the namespace.
This module shards the namespace — file → layout, layout generations,
pending two-phase migrations — across N metadata servers on a Chord-style
consistent-hash ring keyed by file name, and makes the metadata path as
resilient as the data path (DESIGN.md §14):

- **Ring layout** (:class:`HashRing`): every shard owns the arc of the
  2^32 hash space ending at its token; a file lives on the first shard at
  or clockwise-after ``sha1(name)``. Routing from a deterministic entry
  shard to the owner is either a **linear** successor walk (O(N) hops) or
  a **finger-table** jump (O(log N) hops) — both return the same owner,
  only the hop count differs, and each hop costs ``hop_latency`` of
  simulated time, so the routing choice is measurable in makespans and in
  ``repro mds-bench``.
- **Per-shard WAL**: each :class:`MetadataShard` journals every namespace
  mutation into its own :class:`~repro.pfs.journal.MetadataJournal` before
  applying it. The journal bytes are the shard's "disk" — they survive the
  crash of the shard's in-memory state.
- **Crash + failover**: :meth:`MetadataCluster.crash_shard` kills a shard
  (fault kind ``mds-crash:<shard>@<t>``), interrupting in-flight lookups;
  clients retry with seed-deterministic capped exponential backoff.
  :meth:`MetadataCluster.recover_shard` replays the victim's journal on
  its ring successor — longest-clean-prefix semantics inherited from
  :meth:`MetadataServer.recover`, uncommitted migrations rolled back —
  then removes the victim's token so the successor owns its arc.
- **Join/leave** (:meth:`add_shard` / :meth:`remove_shard`): key handoff
  moves exactly the entries whose arc changed hands, journaled on both
  sides so recovery stays correct across membership changes.
- **Degraded operation**: while a shard is down and unrecovered, lookups
  against its arc retry and then raise the typed :class:`MetadataUnavailable`
  instead of wedging the simulation; control-plane operations raise it
  immediately. :class:`ShardHealth` (mirroring
  :class:`~repro.pfs.health.ServerHealth`) keeps the counters.

Everything is seed-deterministic: positions come from sha1, entry shards
from a consult sequence number, backoff jitter from
:func:`repro.util.rng.derive_rng` — never from wall clock or salted
``hash()`` — so the same (seed, schedule) replays bit-identically, serial
or under ``--jobs N``.

With ``n_shards=1`` and no armed mds faults, :meth:`MetadataCluster.consult`
performs the exact event sequence of the legacy single
:class:`MetadataServer` (request → service timeout → release, zero hops),
so makespans match the unsharded baseline — the kill switch is the
``Testbed.mds_shards == 0`` default, which never constructs a cluster at
all.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from collections.abc import Generator
from dataclasses import dataclass

from repro.pfs.journal import layout_to_spec
from repro.pfs.layout import LayoutPolicy
from repro.pfs.metadata import MetadataServer
from repro.simulate.engine import Interrupt, Process, Simulator
from repro.simulate.resources import Resource
from repro.util.rng import derive_rng

#: Hash-space size of the ring (Chord with 32-bit identifiers).
RING_BITS = 32
RING_SPACE = 1 << RING_BITS

ROUTING_MODES = ("finger", "linear")


class MetadataUnavailable(RuntimeError):
    """A metadata operation could not be served by any shard.

    Raised when a lookup's retry budget is exhausted against a crashed,
    unrecovered shard, and immediately by control-plane operations
    (register/relayout/migration) that target an unreachable arc.
    ``shard`` is the shard id last involved, when known.
    """

    def __init__(self, message: str, shard: int | None = None):
        super().__init__(message)
        self.shard = shard


def ring_position(label: str) -> int:
    """Stable position of ``label`` on the ring (first 4 sha1 bytes).

    Python's builtin ``hash()`` is salted per process; sha1 keeps shard
    placement identical across forked pool workers and sessions.
    """
    return int.from_bytes(hashlib.sha1(label.encode()).digest()[:4], "big")


def _in_arc(start: int, end: int, x: int) -> bool:
    """True iff ``x`` lies in the clockwise arc ``(start, end]`` (mod 2^32)."""
    if start == end:
        return True  # single-node ring: the node owns everything
    if start < end:
        return start < x <= end
    return x > start or x <= end


def _in_open_arc(start: int, end: int, x: int) -> bool:
    """True iff ``x`` lies in the clockwise arc ``(start, end)`` (mod 2^32)."""
    if start == end:
        return x != start
    if start < end:
        return start < x < end
    return x > start or x < end


class HashRing:
    """Consistent-hash ring with linear and finger-table routing.

    Members are integer shard ids; each gets one token at
    ``ring_position("mds<id>")`` (colliding tokens are linearly probed to
    the next free position, deterministically). The ring answers two
    questions: who owns a key, and how many hops a request starting at an
    entry member takes to reach the owner under each routing mode.
    """

    def __init__(self, members: list[int] | tuple[int, ...] = ()):
        self._position: dict[int, int] = {}
        self._sorted: list[tuple[int, int]] = []  # (position, member)
        self._fingers: dict[int, list[int]] = {}
        for member in members:
            self.join(member)

    # -- membership --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._position)

    def __contains__(self, member: int) -> bool:
        return member in self._position

    def members(self) -> tuple[int, ...]:
        """Members in ring (position) order — the entry-point rotation."""
        return tuple(member for _, member in self._sorted)

    def position_of(self, member: int) -> int:
        return self._position[member]

    def join(self, member: int) -> None:
        """Add ``member``'s token to the ring."""
        if member in self._position:
            raise ValueError(f"shard {member} already on the ring")
        position = ring_position(f"mds{member}")
        taken = {p for p in self._position.values()}
        while position in taken:
            position = (position + 1) % RING_SPACE
        self._position[member] = position
        self._rebuild()

    def leave(self, member: int) -> None:
        """Remove ``member``'s token; its arc falls to the successor."""
        if member not in self._position:
            raise ValueError(f"shard {member} not on the ring")
        del self._position[member]
        self._rebuild()

    def _rebuild(self) -> None:
        self._sorted = sorted((p, m) for m, p in self._position.items())
        # finger[k] of a member = owner of (position + 2^k): the classic
        # Chord table, rebuilt eagerly (membership changes are rare and the
        # ring is small).
        self._fingers = {}
        if not self._sorted:
            return
        for position, member in self._sorted:
            table = []
            for k in range(RING_BITS):
                target = (position + (1 << k)) % RING_SPACE
                table.append(self._owner_of_position(target))
            self._fingers[member] = table

    # -- ownership ---------------------------------------------------------

    def key_position(self, name: str) -> int:
        return ring_position(name)

    def _owner_of_position(self, position: int) -> int:
        positions = self._sorted
        index = bisect_left(positions, (position, -1))
        if index == len(positions):
            index = 0  # wrap: first token clockwise from the top of the space
        return positions[index][1]

    def owner_of(self, name: str) -> int:
        """Member owning ``name`` (successor of the key's position)."""
        if not self._sorted:
            raise ValueError("ring has no members")
        return self._owner_of_position(self.key_position(name))

    def successor(self, member: int) -> int | None:
        """Next member clockwise after ``member``; None if it is alone."""
        if len(self._sorted) < 2:
            return None
        positions = [p for p, _ in self._sorted]
        index = bisect_left(positions, self._position[member])
        return self._sorted[(index + 1) % len(self._sorted)][1]

    # -- routing -----------------------------------------------------------

    def route(self, entry: int, name: str, mode: str = "finger") -> tuple[int, int]:
        """Hop count and owner for a lookup of ``name`` entering at ``entry``.

        ``linear`` walks successors one arc at a time; ``finger`` jumps via
        the closest preceding finger (Chord's O(log N) search). Both reach
        the same owner; only the hop count differs. Zero hops when the
        entry already owns the key.
        """
        if mode not in ROUTING_MODES:
            raise ValueError(f"unknown routing mode {mode!r}; expected one of {ROUTING_MODES}")
        owner = self.owner_of(name)
        if entry == owner:
            return 0, owner
        key = self.key_position(name)
        hops = 0
        current = entry
        if mode == "linear":
            while current != owner:
                current = self.successor(current)
                hops += 1
            return hops, owner
        while current != owner:
            successor = self.successor(current)
            if _in_arc(self._position[current], self._position[successor], key):
                current = successor
            else:
                current = self._closest_preceding(current, key)
                if current is None:
                    current = successor
            hops += 1
        return hops, owner

    def _closest_preceding(self, member: int, key: int) -> int | None:
        position = self._position[member]
        for finger in reversed(self._fingers[member]):
            if finger != member and _in_open_arc(position, key, self._position[finger]):
                return finger
        return None


class ShardHealth:
    """Alive/dead state and resilience counters for a metadata cluster.

    The metadata-plane sibling of :class:`~repro.pfs.health.ServerHealth`:
    ``alive`` flags flipped by :meth:`MetadataCluster.crash_shard`,
    ``recovered_to`` recording which successor absorbed a victim's arc, and
    counters feeding ``mds.*`` metrics and
    :class:`repro.faults.injector.FaultStats`.
    """

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("ShardHealth needs at least one shard")
        self.alive: list[bool] = [True] * n_shards
        self.failed_at: dict[int, float] = {}
        #: victim shard id -> successor that replayed its journal.
        self.recovered_to: dict[int, int] = {}
        self.crashes = 0
        self.recoveries = 0
        self.retries = 0
        self.unavailable = 0
        self.records_replayed = 0
        self.entries_handed_off = 0
        self.rolled_back = 0

    @property
    def n_shards(self) -> int:
        return len(self.alive)

    @property
    def touched(self) -> bool:
        """True once any crash or resilience event happened (obs gating)."""
        return bool(self.failed_at or self.retries or self.unavailable)

    def is_alive(self, shard_id: int) -> bool:
        return self.alive[shard_id]

    def mark_failed(self, shard_id: int, now: float) -> bool:
        if not (0 <= shard_id < self.n_shards):
            raise IndexError(f"shard {shard_id} out of range 0..{self.n_shards - 1}")
        if not self.alive[shard_id]:
            return False
        self.alive[shard_id] = False
        self.failed_at[shard_id] = now
        self.crashes += 1
        return True

    def mark_recovered(self, shard_id: int, successor: int) -> None:
        self.recovered_to[shard_id] = successor
        self.recoveries += 1

    def grow(self) -> int:
        """Track one more shard (node join); returns its id."""
        self.alive.append(True)
        return len(self.alive) - 1

    def counters(self) -> dict[str, int]:
        """Picklable counter snapshot (feeds FaultStats and obs metrics)."""
        return {
            "shards_failed": len(self.failed_at),
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "retries": self.retries,
            "unavailable": self.unavailable,
            "records_replayed": self.records_replayed,
            "entries_handed_off": self.entries_handed_off,
            "rolled_back": self.rolled_back,
        }


class MetadataShard(MetadataServer):
    """One ring member: a journaled MetadataServer with an identity.

    Always journals — the WAL is what makes the shard's namespace survive
    its crash — and names its DES service resource after itself so traced
    runs show per-shard queueing.
    """

    def __init__(self, shard_id: int, **mds_kwargs):
        super().__init__(**mds_kwargs)
        self.shard_id = int(shard_id)
        self.name = f"mds{shard_id}"
        self.enable_journal()

    def attach(self, sim: Simulator) -> None:
        self._service = Resource(sim, capacity=self.parallelism, name=self.name)

    def adopt(self, name: str, layout: LayoutPolicy, generation: int) -> None:
        """Take ownership of an entry at its current generation (journaled).

        Used by key handoff and crash recovery; unlike :meth:`register`
        the journal record carries the entry's real generation, so a later
        replay of *this* shard's journal reproduces the adopted state.
        """
        assert self.journal is not None
        self.journal.append(
            "register",
            name=name,
            generation=int(generation),
            layout=layout_to_spec(layout),
        )
        self._files[name] = layout
        self._generations[name] = int(generation)

    def adopt_pending(self, name: str, generation: int, layout: LayoutPolicy) -> None:
        """Take over an in-flight two-phase migration intent (journaled)."""
        assert self.journal is not None
        self.journal.append(
            "migration_begin",
            name=name,
            generation=int(generation),
            layout=layout_to_spec(layout),
        )
        self._pending_migrations[name] = (int(generation), layout)


@dataclass(frozen=True)
class MdsStats:
    """Picklable metadata-cluster summary of one run (``RunResult.mds``)."""

    n_shards: int
    routing: str
    lookups: int
    hops_total: int
    hops_max: int
    crashes: int
    recoveries: int
    records_replayed: int
    entries_handed_off: int
    retries: int
    unavailable: int
    #: Entries of the expected end-of-run namespace that no reachable shard
    #: could serve (or served at a stale generation). The chaos gate: zero
    #: whenever every crashed shard was recovered.
    lost_entries: int = 0
    #: True when the run was aborted by an unrecoverable MetadataUnavailable.
    failed: bool = False
    shard_lookups: tuple[int, ...] = ()

    @property
    def mean_hops(self) -> float:
        return self.hops_total / self.lookups if self.lookups else 0.0


class MetadataCluster:
    """N metadata shards behind one MetadataServer-shaped facade.

    Drop-in for :class:`MetadataServer` everywhere the filesystem, online
    controller, and harness touch metadata: the namespace API routes each
    operation to the shard owning the file's arc, and :meth:`consult` is
    the DES lookup path with hop costs, per-shard service queues, and the
    retry/backoff/failover loop described in the module docstring.
    """

    def __init__(
        self,
        n_shards: int,
        lookup_latency: float = 3.0e-5,
        per_region_latency: float = 2.0e-6,
        parallelism: int = 8,
        routing: str = "finger",
        hop_latency: float = 5.0e-6,
        recovery_delay: float | None = 2.0e-3,
        max_attempts: int = 12,
        backoff_base: float = 5.0e-4,
        backoff_cap: float = 5.0e-3,
        seed: int = 0,
        profile=None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if routing not in ROUTING_MODES:
            raise ValueError(f"unknown routing mode {routing!r}; expected one of {ROUTING_MODES}")
        if hop_latency < 0:
            raise ValueError(f"hop_latency must be >= 0, got {hop_latency}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.routing = routing
        self.hop_latency = float(hop_latency)
        #: Seconds between a crash and its journal replay on the successor
        #: (driven by the fault injector); None disables automatic recovery
        #: — the shard's arc stays degraded for the rest of the run.
        self.recovery_delay = recovery_delay if recovery_delay is None else float(recovery_delay)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.seed = int(seed)
        self._mds_kwargs = {
            "lookup_latency": lookup_latency,
            "per_region_latency": per_region_latency,
            "parallelism": parallelism,
            "profile": profile,
        }
        self.shards: list[MetadataShard] = [
            MetadataShard(i, **self._mds_kwargs) for i in range(n_shards)
        ]
        self.ring = HashRing(range(n_shards))
        self.health = ShardHealth(n_shards)
        self._sim: Simulator | None = None
        self.lookup_count = 0
        self.hops_total = 0
        self.hops_max = 0
        self._consult_seq = 0
        #: In-flight lookup serve processes per shard, interrupted on crash.
        self._inflight: dict[int, set[Process]] = {i: set() for i in range(n_shards)}
        #: True once an mds-crash fault is armed: lookups run in child
        #: processes so a crash can interrupt them. Off by default — the
        #: inline path is event-for-event identical to the legacy
        #: MetadataServer.consult, the shards=1 parity contract.
        self._interruptible = False
        #: The cluster has no single WAL; collect_metrics' legacy
        #: ``journal.*`` export stays off and ``mds.*`` counters (which
        #: aggregate the per-shard journals) are exported instead.
        self.journal = None
        self.last_recovery = None
        #: Callbacks fired whenever cached layout entries may have gone
        #: stale cluster-wide (crash and journal-replayed failover); the
        #: client-side :class:`~repro.pfs.filesystem.MetadataCache`
        #: subscribes its epoch bump here.
        self._invalidation_listeners: list = []

    def subscribe_invalidation(self, callback) -> None:
        """Register a zero-argument callback fired on crash/failover."""
        self._invalidation_listeners.append(callback)

    def _notify_invalidation(self) -> None:
        for callback in self._invalidation_listeners:
            callback()

    # -- plumbing ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def attach(self, sim: Simulator) -> None:
        """Enable the queued lookup path (called by the owning filesystem)."""
        self._sim = sim
        for shard in self.shards:
            shard.attach(sim)

    def arm_interrupts(self) -> None:
        """Run lookups interruptibly (installed mds-crash faults only)."""
        self._interruptible = True

    def lookup_time(self, n_regions: int, op: str = "open") -> float:
        """Service time of one RST consultation (same model as one MDS)."""
        return self.shards[0].lookup_time(n_regions, op=op)

    @property
    def parallelism(self) -> int:
        return self.shards[0].parallelism

    @property
    def utilization_seconds(self) -> float:
        """Total busy time across all shard services (attached mode only)."""
        return sum(shard.utilization_seconds for shard in self.shards)

    # -- ownership ---------------------------------------------------------

    def shard_of(self, name: str) -> int:
        """Shard id currently owning ``name``'s arc (alive or not)."""
        return self.ring.owner_of(name)

    def _owner_or_raise(self, name: str) -> MetadataShard:
        owner = self.ring.owner_of(name)
        if not self.health.is_alive(owner):
            self.health.unavailable += 1
            raise MetadataUnavailable(
                f"metadata shard mds{owner} is down and unrecovered (key {name!r})",
                shard=owner,
            )
        return self.shards[owner]

    def _reachable_shards(self) -> list[MetadataShard]:
        return [
            self.shards[member]
            for member in self.ring.members()
            if self.health.is_alive(member)
        ]

    # -- namespace API (MetadataServer facade) ------------------------------

    def register(self, name: str, layout: LayoutPolicy) -> None:
        self._owner_or_raise(name).register(name, layout)

    def unregister(self, name: str) -> None:
        self._owner_or_raise(name).unregister(name)

    def lookup(self, name: str) -> LayoutPolicy:
        self.lookup_count += 1
        shard = self._owner_or_raise(name)
        try:
            return shard._files[name]
        except KeyError:
            raise FileNotFoundError(f"no such file: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._owner_or_raise(name)

    def files(self) -> list[str]:
        """Registered names across every reachable shard, sorted."""
        names: list[str] = []
        for shard in self._reachable_shards():
            names.extend(shard._files)
        return sorted(names)

    def generation_of(self, name: str) -> int:
        return self._owner_or_raise(name).generation_of(name)

    def namespace_state(self) -> dict[str, tuple[int, str]]:
        """Merged canonical snapshot of every reachable shard's namespace."""
        state: dict[str, tuple[int, str]] = {}
        for shard in self._reachable_shards():
            state.update(shard.namespace_state())
        return state

    def has_pending_migration(self, name: str) -> bool:
        owner = self.ring.owner_of(name)
        return (
            self.health.is_alive(owner)
            and name in self.shards[owner]._pending_migrations
        )

    def record_relayout(self, name: str, layout: LayoutPolicy, generation: int) -> None:
        self._owner_or_raise(name).record_relayout(name, layout, generation)

    def begin_migration(self, name: str, layout: LayoutPolicy, generation: int) -> None:
        self._owner_or_raise(name).begin_migration(name, layout, generation)

    def commit_migration(self, name: str) -> None:
        self._owner_or_raise(name).commit_migration(name)

    def abort_migration(self, name: str) -> None:
        self._owner_or_raise(name).abort_migration(name)

    def record_rebuild_begin(
        self, name: str, generation: int, region: int, server: int, copy: int, target: int
    ) -> None:
        self._owner_or_raise(name).record_rebuild_begin(
            name, generation, region, server, copy, target
        )

    def record_rebuild_commit(
        self,
        name: str,
        generation: int,
        region: int,
        server: int,
        copy: int,
        target: int,
        natural: bool,
    ) -> None:
        self._owner_or_raise(name).record_rebuild_commit(
            name, generation, region, server, copy, target, natural
        )

    def record_rebuild_abort(
        self, name: str, generation: int, region: int, server: int, copy: int
    ) -> None:
        self._owner_or_raise(name).record_rebuild_abort(name, generation, region, server, copy)

    def replica_sites(self) -> dict[tuple[str, int, int, int, int], int]:
        """Merged committed replica-site overrides across reachable shards."""
        sites: dict[tuple[str, int, int, int, int], int] = {}
        for shard in self._reachable_shards():
            sites.update(shard._replica_sites)
        return sites

    # -- DES lookup path ----------------------------------------------------

    def _backoff_delay(self, key: str, seq: int, attempt: int) -> float:
        base = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        rng = derive_rng(self.seed, "mds-retry", key, seq, attempt)
        return base * (1.0 + 0.25 * float(rng.random()))

    def consult(self, layout: LayoutPolicy, name: str | None = None, op: str = "open") -> Generator:
        """DES generator: one routed, queued, crash-survivable RST lookup.

        Pays ``hops * hop_latency`` for the ring walk from a rotating entry
        shard to the owner, then queues at the owner's service for the
        usual ``lookup_time`` of the ``op`` class. If the owner is down (or
        dies mid-service, when interrupts are armed) the client backs off
        deterministically and re-routes — after recovery the successor owns
        the arc — until the attempt budget is spent, then raises
        :class:`MetadataUnavailable`.
        """
        self.lookup_count += 1
        sim = self._sim
        if sim is None:
            raise RuntimeError("MetadataCluster not attached to a simulator")
        service_time = self.lookup_time(layout.region_count(), op=op)
        key = name if name is not None else ""
        seq = self._consult_seq
        self._consult_seq += 1
        attempt = 0
        while True:
            members = self.ring.members()
            entry = members[seq % len(members)]
            hops, home = self.ring.route(entry, key, self.routing)
            self.hops_total += hops
            if hops > self.hops_max:
                self.hops_max = hops
            if hops and self.hop_latency > 0:
                yield sim.timeout(hops * self.hop_latency)
            if self.health.is_alive(home):
                shard = self.shards[home]
                if not self._interruptible:
                    # Inline fast path: the exact event sequence of the
                    # legacy MetadataServer.consult (the parity contract).
                    if service_time <= 0:
                        shard.lookup_count += 1
                        return
                    service = shard._service
                    grant = yield service.request()
                    try:
                        yield sim.timeout(service_time)
                    finally:
                        service.release(grant)
                    shard.lookup_count += 1
                    return
                serve = sim.process(
                    self._shard_serve(home, service_time), name=f"{shard.name}-lookup"
                )
                self._inflight[home].add(serve)
                try:
                    yield serve
                except MetadataUnavailable:
                    pass  # shard died mid-lookup: back off and re-route
                else:
                    return
                finally:
                    self._inflight[home].discard(serve)
            attempt += 1
            if attempt >= self.max_attempts:
                self.health.unavailable += 1
                raise MetadataUnavailable(
                    f"metadata lookup for {key!r} failed after {attempt} attempt(s): "
                    f"shard mds{home} unavailable",
                    shard=home,
                )
            self.health.retries += 1
            delay = self._backoff_delay(key, seq, attempt)
            if delay > 0:
                yield sim.timeout(delay)

    def _shard_serve(self, shard_id: int, service_time: float) -> Generator:
        """One attempt at the owner's service queue, as a child process.

        Runs as its own Process so a crash can interrupt it without racing
        the client's other events; after an Interrupt it raises without
        yielding again, so any stale grant/timeout callback finds the
        process already finished.
        """
        shard = self.shards[shard_id]
        sim = self._sim
        service = shard._service
        request = service.request()
        granted = False
        try:
            yield request
            granted = True
            if service_time > 0:
                yield sim.timeout(service_time)
        except Interrupt as interrupt:
            if not granted and not service.cancel(request):
                granted = True  # granted between the crash and our wakeup
            if granted:
                service.release(request)
            raise MetadataUnavailable(
                f"shard mds{shard_id} crashed mid-lookup", shard=shard_id
            ) from interrupt
        service.release(request)
        shard.lookup_count += 1

    # -- crash, recovery, membership ----------------------------------------

    def crash_shard(self, shard_id: int) -> bool:
        """Kill a shard: in-memory namespace lost, journal bytes survive.

        In-flight lookups at the shard are interrupted (clients re-route
        and retry). Returns False if the shard was already dead.
        """
        if not (0 <= shard_id < self.n_shards):
            raise IndexError(f"shard {shard_id} out of range 0..{self.n_shards - 1}")
        now = self._sim.now if self._sim is not None else 0.0
        if not self.health.mark_failed(shard_id, now):
            return False
        cause = MetadataUnavailable(f"shard mds{shard_id} crashed", shard=shard_id)
        for process in list(self._inflight[shard_id]):
            process.interrupt(cause)
        self._inflight[shard_id].clear()
        self._notify_invalidation()
        return True

    def recover_shard(self, shard_id: int) -> int | None:
        """Replay a crashed shard's journal on its ring successor.

        The successor adopts every entry of the victim's longest clean
        journal prefix at its recorded generation (uncommitted migrations
        roll back, exactly as :meth:`MetadataServer.recover`), then the
        victim's token leaves the ring so the successor owns its arc from
        here on. Returns the successor id, or None when no live successor
        exists — the arc stays degraded.
        """
        if self.health.is_alive(shard_id):
            raise RuntimeError(f"shard mds{shard_id} is alive; nothing to recover")
        if shard_id in self.health.recovered_to:
            return self.health.recovered_to[shard_id]
        successor_id = self._alive_successor(shard_id)
        if successor_id is None:
            return None
        victim = self.shards[shard_id]
        replayed = MetadataServer.recover(victim.journal.data)
        successor = self.shards[successor_id]
        absorbed = 0
        for name in sorted(replayed._files):
            successor.adopt(
                name, replayed._files[name], replayed._generations.get(name, 0)
            )
            absorbed += 1
        report = replayed.last_recovery
        self.ring.leave(shard_id)
        self.health.mark_recovered(shard_id, successor_id)
        self.health.records_replayed += report.records_applied
        self.health.entries_handed_off += absorbed
        self.health.rolled_back += len(report.rolled_back)
        self.last_recovery = report
        self._notify_invalidation()
        return successor_id

    def _alive_successor(self, shard_id: int) -> int | None:
        """First live member clockwise after ``shard_id`` on the ring."""
        current = shard_id
        for _ in range(len(self.ring)):
            current = self.ring.successor(current)
            if current is None:
                return None
            if self.health.is_alive(current):
                return current
        return None

    def add_shard(self) -> int:
        """Node join: a new shard takes over its arc from its successor.

        Entries (and pending migration intents) whose keys now hash into
        the new shard's arc move over, journaled on both sides, so either
        side's journal still replays to its true namespace.
        """
        new_id = self.health.grow()
        shard = MetadataShard(new_id, **self._mds_kwargs)
        self.shards.append(shard)
        self._inflight[new_id] = set()
        if self._sim is not None:
            shard.attach(self._sim)
        self.ring.join(new_id)
        donor_id = self.ring.successor(new_id)
        if donor_id is not None:
            self._handoff(self.shards[donor_id], shard)
        return new_id

    def remove_shard(self, shard_id: int) -> int | None:
        """Graceful leave: hand every entry to the live successor, then go.

        Unlike :meth:`crash_shard` nothing is lost and no journal replay is
        needed. Returns the successor id (None if the shard was alone, in
        which case it must stay).
        """
        if not self.health.is_alive(shard_id):
            raise RuntimeError(f"shard mds{shard_id} is not alive")
        successor_id = self._alive_successor(shard_id)
        if successor_id is None:
            raise RuntimeError("cannot remove the last live shard")
        leaver = self.shards[shard_id]
        successor = self.shards[successor_id]
        for name in sorted(leaver._files):
            successor.adopt(name, leaver._files[name], leaver._generations.get(name, 0))
            pending = leaver._pending_migrations.get(name)
            if pending is not None:
                generation, layout = pending
                successor.adopt_pending(name, generation, layout)
            self.health.entries_handed_off += 1
        for name in list(leaver._files):
            leaver.unregister(name)
        self.ring.leave(shard_id)
        self.health.alive[shard_id] = False
        self.health.recovered_to[shard_id] = successor_id
        return successor_id

    def _handoff(self, donor: MetadataShard, receiver: MetadataShard) -> int:
        """Move donor entries whose arc now belongs to ``receiver``."""
        moved = 0
        for name in sorted(donor._files):
            if self.ring.owner_of(name) != receiver.shard_id:
                continue
            receiver.adopt(name, donor._files[name], donor._generations.get(name, 0))
            pending = donor._pending_migrations.get(name)
            if pending is not None:
                generation, layout = pending
                receiver.adopt_pending(name, generation, layout)
            donor.unregister(name)
            moved += 1
        self.health.entries_handed_off += moved
        return moved

    # -- accounting ---------------------------------------------------------

    def verify_namespace(self, expected: dict[str, int]) -> int:
        """Count expected entries no reachable shard can serve correctly.

        ``expected`` maps file name → committed layout generation (the
        harness builds it from the filesystem's live handles at the end of
        a run). An entry is *lost* when its arc's owner is down and
        unrecovered, when the owner does not hold the name, or when it
        holds a stale generation. The chaos acceptance gate: this is zero
        whenever every crashed shard was recovered.
        """
        lost = 0
        for name, generation in expected.items():
            owner = self.ring.owner_of(name)
            if not self.health.is_alive(owner):
                lost += 1
                continue
            shard = self.shards[owner]
            if name not in shard._files or shard._generations.get(name, 0) != int(generation):
                lost += 1
        return lost

    def fault_counters(self) -> dict[str, int]:
        """The FaultStats slice: what broke and how clients survived it."""
        return {
            "mds_crashes": self.health.crashes,
            "mds_recoveries": self.health.recoveries,
            "mds_retries": self.health.retries,
            "mds_unavailable": self.health.unavailable,
        }

    def cluster_counters(self) -> dict[str, int]:
        """Flat counter snapshot exported as ``mds.*`` metrics."""
        counters: dict[str, int] = {
            "shards": self.n_shards,
            "lookups": self.lookup_count,
            "hops": self.hops_total,
            "hops_max": self.hops_max,
            "journal_appends": sum(s.journal.appends for s in self.shards),
            "journal_bytes": sum(len(s.journal) for s in self.shards),
        }
        counters.update(self.health.counters())
        for shard in self.shards:
            counters[f"{shard.name}.lookups"] = shard.lookup_count
        return counters

    def stats(self, expected: dict[str, int] | None = None, failed: bool = False) -> MdsStats:
        """Picklable end-of-run summary (``RunResult.mds``)."""
        return MdsStats(
            n_shards=self.n_shards,
            routing=self.routing,
            lookups=self.lookup_count,
            hops_total=self.hops_total,
            hops_max=self.hops_max,
            crashes=self.health.crashes,
            recoveries=self.health.recoveries,
            records_replayed=self.health.records_replayed,
            entries_handed_off=self.health.entries_handed_off,
            retries=self.health.retries,
            unavailable=self.health.unavailable,
            lost_entries=self.verify_namespace(expected) if expected is not None else 0,
            failed=failed,
            shard_lookups=tuple(shard.lookup_count for shard in self.shards),
        )
