"""Layout policies: how a file's address space maps to striping configs.

The paper compares three families (Sec. IV-A):

- **fixed-size stripe** (:class:`FixedLayout` / :class:`HybridFixedLayout`) —
  one (h, s) for the whole file; the OrangeFS default is h = s = 64K.
- **randomly-chosen stripe** (:class:`RandomLayout`) — a stripe pair drawn at
  file-creation time from a candidate set.
- **region-level** (:class:`RegionLevelLayout`) — HARL's output: the file is
  a sequence of regions, each with its own (h, s) from the Region Stripe
  Table.

A policy answers one question: given a logical byte range, which *segments*
does it cross, and under which :class:`StripingConfig` does each segment
stripe? Each segment also carries the byte base of its region so region-level
layouts can address each region as an independent physical file (the paper's
R2F region-to-file mapping).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.pfs.mapping import StripingConfig
from repro.util.rng import derive_rng
from repro.util.units import KiB, format_size

if TYPE_CHECKING:
    from repro.core.rst import RegionStripeTable


@dataclass(frozen=True)
class LayoutSegment:
    """A maximal sub-range of a request striped under one config.

    ``offset``/``size`` address the logical file. ``region_base`` is the
    logical offset where the segment's region begins — sub-request physical
    offsets are computed from ``offset - region_base``, because each region
    is stored as its own physical file (R2F). ``region_id`` keys the physical
    file.
    """

    offset: int
    size: int
    config: StripingConfig
    region_id: int
    region_base: int


class LayoutPolicy(ABC):
    """Maps logical byte ranges to striped segments."""

    @abstractmethod
    def segments(self, offset: int, size: int) -> list[LayoutSegment]:
        """Split ``[offset, offset+size)`` into per-region segments."""

    @abstractmethod
    def describe(self) -> str:
        """Short label for experiment tables (figure-legend style)."""

    def config_at(self, offset: int) -> StripingConfig:
        """The striping config governing the byte at ``offset``."""
        return self.segments(offset, 1)[0].config

    def region_count(self) -> int:
        """Regions in this layout (drives the MDS's RST lookup cost)."""
        return 1

    # -- replication (DESIGN.md §11) ---------------------------------------

    def replica_count(self, region_id: int) -> int:
        """Copies kept of ``region_id``'s data (1 = unreplicated).

        Replicas of a region live on servers of the *other* performance
        class (mirroring HDA's per-allocation-unit RAID-level choice);
        writes mirror synchronously and checksum-mismatching reads repair
        from a surviving copy. Default: no replication.
        """
        return 1

    def max_replicas(self) -> int:
        """Largest :meth:`replica_count` over all regions (capability probe)."""
        return 1

    # -- batched decomposition ---------------------------------------------

    def segments_batch(
        self, offsets: np.ndarray, sizes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[StripingConfig]]:
        """:meth:`segments` over many requests, emitted as flat columns.

        Returns ``(request_index, rel_offset, size, region_id, config_index,
        configs)`` where each entry is one segment piece in ``(request,
        segment)`` order, ``rel_offset`` is the piece's offset within its
        region (``segment.offset - segment.region_base``), and
        ``config_index`` indexes ``configs``. The base implementation loops
        over :meth:`segments`; layouts with closed-form region maps override
        it with vectorized versions.
        """
        req: list[int] = []
        rel: list[int] = []
        seg_sizes: list[int] = []
        regions: list[int] = []
        cfg_idx: list[int] = []
        configs: list[StripingConfig] = []
        cfg_map: dict[int, int] = {}
        for i, (offset, size) in enumerate(zip(offsets.tolist(), sizes.tolist())):
            for segment in self.segments(offset, size):
                key = id(segment.config)
                idx = cfg_map.get(key)
                if idx is None:
                    idx = cfg_map[key] = len(configs)
                    configs.append(segment.config)
                req.append(i)
                rel.append(segment.offset - segment.region_base)
                seg_sizes.append(segment.size)
                regions.append(segment.region_id)
                cfg_idx.append(idx)
        return (
            np.asarray(req, dtype=np.int64),
            np.asarray(rel, dtype=np.int64),
            np.asarray(seg_sizes, dtype=np.int64),
            np.asarray(regions, dtype=np.int64),
            np.asarray(cfg_idx, dtype=np.int64),
            configs,
        )


def _check_replicas(replicas: int) -> int:
    replicas = int(replicas)
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    return replicas


class HybridFixedLayout(LayoutPolicy):
    """One (h, s) pair for the whole file.

    This is the general fixed layout; the homogeneous-default special case
    h == s is :class:`FixedLayout`.
    """

    def __init__(
        self,
        n_hservers: int,
        n_sservers: int,
        hstripe: int,
        sstripe: int,
        replicas: int = 1,
    ):
        self.config = StripingConfig(
            n_hservers=n_hservers,
            n_sservers=n_sservers,
            hstripe=int(hstripe),
            sstripe=int(sstripe),
        )
        self.replicas = _check_replicas(replicas)

    def segments(self, offset: int, size: int) -> list[LayoutSegment]:
        if size < 0 or offset < 0:
            raise ValueError("offset and size must be >= 0")
        if size == 0:
            return []
        return [
            LayoutSegment(offset=offset, size=size, config=self.config, region_id=0, region_base=0)
        ]

    def segments_batch(
        self, offsets: np.ndarray, sizes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[StripingConfig]]:
        # Single region at base 0: every non-empty request is one piece.
        if offsets.size and (int(offsets.min()) < 0 or int(sizes.min()) < 0):
            raise ValueError("offset and size must be >= 0")
        req = np.flatnonzero(sizes > 0)
        zeros = np.zeros(req.shape[0], dtype=np.int64)
        return req, offsets[req], sizes[req], zeros, zeros, [self.config]

    def replica_count(self, region_id: int) -> int:
        return self.replicas

    def max_replicas(self) -> int:
        return self.replicas

    def describe(self) -> str:
        base = self.config.describe()
        return base if self.replicas == 1 else f"{base}+r{self.replicas}"


class FixedLayout(HybridFixedLayout):
    """The traditional PFS layout: the same stripe on every server.

    ``FixedLayout(M, N, 64*KiB)`` is the paper's default OrangeFS layout.
    """

    def __init__(
        self, n_hservers: int, n_sservers: int, stripe: int = 64 * KiB, replicas: int = 1
    ):
        super().__init__(n_hservers, n_sservers, stripe, stripe, replicas=replicas)


class RandomLayout(HybridFixedLayout):
    """The paper's "randomly-chosen stripe" baseline.

    Draws h and s independently from ``choices`` at construction (file
    creation) time, seeded for reproducibility. The draw is constrained to
    s >= h, since a random layout that starves SServers of no data at all is
    not a layout the paper's baseline would produce.
    """

    #: Default candidate stripe sizes, spanning the paper's Fig. 1(b) range.
    DEFAULT_CHOICES: tuple[int, ...] = tuple(
        2**k * KiB for k in range(2, 12)
    )  # 4K .. 2M

    def __init__(
        self,
        n_hservers: int,
        n_sservers: int,
        choices: Sequence[int] | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        rng = derive_rng(seed, "random-layout")
        pool = sorted(int(c) for c in (self.DEFAULT_CHOICES if choices is None else choices))
        if not pool:
            raise ValueError("choices must be non-empty")
        hstripe = int(pool[rng.integers(0, len(pool))])
        upper = [c for c in pool if c >= hstripe]
        sstripe = int(upper[rng.integers(0, len(upper))])
        super().__init__(n_hservers, n_sservers, hstripe, sstripe)

    def describe(self) -> str:
        return f"rand:{self.config.describe()}"


class RegionLevelLayout(LayoutPolicy):
    """HARL's layout: per-region stripe pairs from a Region Stripe Table.

    Requests crossing region boundaries split into per-region segments; each
    region addresses its own physical file (offset rebased to the region
    start), mirroring the R2F mapping of the MPICH2 implementation.
    """

    def __init__(
        self,
        rst: "RegionStripeTable",
        replicas: int | dict[int, int] | Sequence[int] = 1,
    ):
        if len(rst) == 0:
            raise ValueError("RST must contain at least one region")
        self.rst = rst
        # Per-region replication: an int applies to every region; a mapping
        # or sequence sets region-by-region counts (absent regions keep 1).
        if isinstance(replicas, int):
            self._replicas: dict[int, int] = (
                {} if replicas == 1 else {e.region_id: _check_replicas(replicas) for e in rst.entries}
            )
        elif isinstance(replicas, dict):
            self._replicas = {int(r): _check_replicas(c) for r, c in replicas.items()}
        else:
            counts = list(replicas)
            if len(counts) != len(rst):
                raise ValueError(
                    f"replicas sequence has {len(counts)} entries for {len(rst)} regions"
                )
            self._replicas = {
                e.region_id: _check_replicas(c) for e, c in zip(rst.entries, counts)
            }
        for region_id in self._replicas:
            if not any(e.region_id == region_id for e in rst.entries):
                raise ValueError(f"replicas names unknown region {region_id}")

    def segments(self, offset: int, size: int) -> list[LayoutSegment]:
        if size < 0 or offset < 0:
            raise ValueError("offset and size must be >= 0")
        out: list[LayoutSegment] = []
        cursor = offset
        end = offset + size
        while cursor < end:
            entry = self.rst.lookup(cursor)
            seg_end = min(end, entry.end if entry.end is not None else end)
            out.append(
                LayoutSegment(
                    offset=cursor,
                    size=seg_end - cursor,
                    config=entry.config,
                    region_id=entry.region_id,
                    region_base=entry.offset,
                )
            )
            cursor = seg_end
        return out

    def segments_batch(
        self, offsets: np.ndarray, sizes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[StripingConfig]]:
        # Regions tile the address space from 0, so the regions a request
        # crosses are a contiguous index run found by two searchsorted calls.
        if offsets.size and (int(offsets.min()) < 0 or int(sizes.min()) < 0):
            raise ValueError("offset and size must be >= 0")
        entries = self.rst.entries
        starts = np.asarray([e.offset for e in entries], dtype=np.int64)
        # Last region is unbounded; cap piece ends with +max so the minimum
        # below always picks the request end there.
        ends = np.asarray(
            [e.end if e.end is not None else np.iinfo(np.int64).max for e in entries],
            dtype=np.int64,
        )
        nonempty = sizes > 0
        first = np.searchsorted(starts, offsets, side="right") - 1
        last = np.searchsorted(starts, offsets + sizes - 1, side="right") - 1
        counts = np.where(nonempty, last - first + 1, 0)
        total = int(counts.sum())
        req = np.repeat(np.arange(offsets.shape[0], dtype=np.int64), counts)
        base = np.cumsum(counts) - counts
        region = np.arange(total, dtype=np.int64) - base[req] + first[req]
        seg_start = np.maximum(offsets[req], starts[region])
        seg_end = np.minimum(offsets[req] + sizes[req], ends[region])
        configs = [e.config for e in entries]
        return (
            req,
            seg_start - starts[region],
            seg_end - seg_start,
            region,
            region.copy(),
            configs,
        )

    def region_count(self) -> int:
        return len(self.rst)

    def replica_count(self, region_id: int) -> int:
        return self._replicas.get(region_id, 1)

    def max_replicas(self) -> int:
        return max(self._replicas.values(), default=1)

    def describe(self) -> str:
        suffix = "" if self.max_replicas() == 1 else f"+r{self.max_replicas()}"
        if len(self.rst) == 1:
            return f"harl:{self.rst.entries[0].config.describe()}{suffix}"
        return f"harl:{len(self.rst)}regions{suffix}"

    def __repr__(self) -> str:
        parts = ", ".join(
            f"[{format_size(e.offset)}+ {e.config.describe()}]" for e in self.rst.entries
        )
        return f"RegionLevelLayout({parts})"
