"""Server health tracking and degraded-mode request routing.

A production hybrid PFS keeps serving when a data server dies: sub-requests
bound for the dead server fail over to a surviving server — ideally of the
same performance class, falling back to the other class — and the client
stack counts every retry and reroute so the degradation is visible instead
of silent. :class:`ServerHealth` is that bookkeeping for one
:class:`~repro.pfs.filesystem.ParallelFileSystem`:

- **alive flags** per server, flipped by ``ParallelFileSystem.fail_server``
  (driven by :class:`repro.faults.injector.FaultInjector` or tests);
- a **route map** rebuilt on every failure: dead server id → surviving
  server id, same-class survivors assigned round-robin first, then any
  surviving server of another class. ``route_map is None`` while every
  server is healthy, so the data path's only steady-state cost is one
  attribute comparison;
- **resilience counters** (retries, timeouts, reroutes, exhausted
  requests) exported into the observability registry and into
  :class:`repro.faults.injector.FaultStats`.

The module sits below :mod:`repro.faults` so the PFS layers can raise the
typed :class:`ServerUnavailable` without importing the injection machinery.
"""

from __future__ import annotations


class ServerUnavailable(RuntimeError):
    """A sub-request could not be served.

    Raised when a request targets a crashed server, when a sub-request
    times out under a :class:`repro.faults.retry.RetryPolicy`, and — as the
    terminal error — when every retry attempt is exhausted. ``server``
    names the last server involved, when known.
    """

    def __init__(self, message: str, server: str | None = None):
        super().__init__(message)
        self.server = server


class ServerHealth:
    """Alive/dead state, failover routing, and resilience counters.

    Args:
        class_counts: servers per performance class in server order
            (e.g. ``(M, N)`` for a :class:`~repro.pfs.filesystem.HybridPFS`),
            matching the owning filesystem's ``class_counts``.
    """

    def __init__(self, class_counts: tuple[int, ...]):
        self.class_counts = tuple(int(c) for c in class_counts)
        n = sum(self.class_counts)
        if n <= 0:
            raise ValueError("ServerHealth needs at least one server")
        self.alive: list[bool] = [True] * n
        self.failed_at: dict[int, float] = {}
        #: ``None`` while all servers are healthy (identity routing with a
        #: single pointer comparison on the data path); otherwise a tuple
        #: mapping every server id to a surviving id, or ``None`` entries
        #: when no server survives anywhere.
        self.route_map: tuple[int | None, ...] | None = None
        # Class boundaries: server i belongs to class c iff
        # _class_start[c] <= i < _class_start[c + 1].
        starts = [0]
        for count in self.class_counts:
            starts.append(starts[-1] + count)
        self._class_start = tuple(starts)
        # Resilience counters (see collect_metrics / FaultStats).
        self.retries = 0
        self.timeouts = 0
        self.failovers = 0
        self.rerouted_subrequests = 0
        self.exhausted = 0
        self.servers_restored = 0

    @property
    def n_servers(self) -> int:
        return len(self.alive)

    @property
    def n_failed(self) -> int:
        return len(self.failed_at)

    @property
    def touched(self) -> bool:
        """True once any failure or resilience event happened (obs gating)."""
        return bool(
            self.failed_at
            or self.retries
            or self.timeouts
            or self.rerouted_subrequests
            or self.exhausted
            or self.failovers
            or self.servers_restored
        )

    def class_of(self, server_id: int) -> int:
        """Performance-class index of ``server_id``."""
        if not (0 <= server_id < self.n_servers):
            raise IndexError(f"server_id {server_id} out of range 0..{self.n_servers - 1}")
        for cls in range(len(self.class_counts)):
            if server_id < self._class_start[cls + 1]:
                return cls
        raise AssertionError("unreachable")

    def is_alive(self, server_id: int) -> bool:
        return self.alive[server_id]

    def availability_mask(self) -> tuple[bool, ...]:
        """Per-server alive flags, for the planner's degraded re-planning."""
        return tuple(self.alive)

    def surviving_server_ids(self) -> tuple[int, ...]:
        """Alive server ids in server order (class by class).

        This is exactly the ``server_map`` a degraded layout planned over
        the surviving counts needs: config server id ``k`` → physical id
        ``surviving_server_ids()[k]``.
        """
        return tuple(i for i, up in enumerate(self.alive) if up)

    def mark_failed(self, server_id: int, now: float) -> bool:
        """Record a permanent failure; returns False if already failed.

        Rebuilds the route map so subsequent :meth:`route` calls send the
        dead server's sub-requests to survivors.
        """
        if not (0 <= server_id < self.n_servers):
            raise IndexError(f"server_id {server_id} out of range 0..{self.n_servers - 1}")
        if not self.alive[server_id]:
            return False
        self.alive[server_id] = False
        self.failed_at[server_id] = now
        self.route_map = self._build_route_map()
        self.failovers += 1
        return True

    def mark_restored(self, server_id: int) -> bool:
        """Revive a failed server; returns False if it was already alive.

        The route map is rebuilt (dropped back to ``None`` identity routing
        once every server is healthy again), so sub-requests flow to the
        restored server immediately — it rejoins *empty*; re-populating it
        is the rebuild manager's job, not the router's.
        """
        if not (0 <= server_id < self.n_servers):
            raise IndexError(f"server_id {server_id} out of range 0..{self.n_servers - 1}")
        if self.alive[server_id]:
            return False
        self.alive[server_id] = True
        self.failed_at.pop(server_id, None)
        self.route_map = None if all(self.alive) else self._build_route_map()
        self.servers_restored += 1
        return True

    def _build_route_map(self) -> tuple[int | None, ...]:
        survivors_by_class = [
            [
                i
                for i in range(self._class_start[c], self._class_start[c + 1])
                if self.alive[i]
            ]
            for c in range(len(self.class_counts))
        ]
        all_survivors = [i for i, up in enumerate(self.alive) if up]
        # Round-robin cursors make the assignment deterministic and spread
        # a dead server's load instead of piling it on one survivor.
        same_class_cursor = [0] * len(self.class_counts)
        cross_cursor = 0
        route: list[int | None] = []
        for server_id in range(self.n_servers):
            if self.alive[server_id]:
                route.append(server_id)
                continue
            cls = self.class_of(server_id)
            pool = survivors_by_class[cls]
            if pool:
                route.append(pool[same_class_cursor[cls] % len(pool)])
                same_class_cursor[cls] += 1
            elif all_survivors:
                route.append(all_survivors[cross_cursor % len(all_survivors)])
                cross_cursor += 1
            else:
                route.append(None)
        return tuple(route)

    def route(self, server_id: int) -> int:
        """Physical server to use for a sub-request addressed to ``server_id``.

        Identity while everything is healthy. After failures, dead ids map
        to survivors (counted in ``rerouted_subrequests``); raises
        :class:`ServerUnavailable` when no server survives at all.
        """
        route_map = self.route_map
        if route_map is None:
            return server_id
        target = route_map[server_id]
        if target is None:
            raise ServerUnavailable("no surviving servers to fail over to")
        if target != server_id:
            self.rerouted_subrequests += 1
        return target

    def counters(self) -> dict[str, int]:
        """Picklable counter snapshot (feeds FaultStats and obs metrics)."""
        return {
            "servers_failed": self.n_failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failovers": self.failovers,
            "rerouted_subrequests": self.rerouted_subrequests,
            "exhausted": self.exhausted,
            "servers_restored": self.servers_restored,
        }
