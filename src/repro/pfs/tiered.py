"""Multi-tier striping: the paper's stated extension beyond two classes.

Sec. V: "In the future, we would like to extend our cost model to
accommodate more than two server performance profiles." This module
generalizes the round-robin striping math from (M HServers, N SServers) to
an ordered list of server classes, each with its own count and stripe size
— e.g. NVMe / SATA-SSD / HDD tiers. The same closed form applies: one
striping round is ``S = Σ count_i · stripe_i`` bytes, each server's window
sits inside the round, and a contiguous logical request maps to at most one
contiguous physical extent per server.

:class:`MultiClassStripingConfig` implements the same interface as the
two-class :class:`repro.pfs.mapping.StripingConfig` (``class_counts``,
``stripes``, ``server_window``, ``decompose``, ``describe``, ``to_dict``),
so layouts, the RST, and the filesystem fan-out work unchanged.
:class:`TieredPFS` builds a cluster from arbitrary per-tier device factories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.base import StorageDevice
from repro.network.link import NetworkModel
from repro.pfs.filesystem import ParallelFileSystem
from repro.pfs.layout import LayoutPolicy, LayoutSegment
from repro.pfs.mapping import CriticalParams, StripingConfig, SubRequest, _server_bytes_below
from repro.pfs.server import FileServer
from repro.simulate.engine import Simulator
from repro.util.units import format_size


@dataclass(frozen=True)
class ClassStripe:
    """One server class in a multi-tier striping config."""

    count: int
    stripe: int

    def __post_init__(self):
        if self.count < 0:
            raise ValueError(f"class count must be >= 0, got {self.count}")
        if self.stripe < 0:
            raise ValueError(f"stripe must be >= 0, got {self.stripe}")


class MultiClassStripingConfig:
    """Round-robin striping over K ordered server classes.

    Class ``i`` owns servers ``offset_i .. offset_i + count_i - 1`` (classes
    concatenated in order), each with stripe ``stripe_i``. A class with
    stripe 0 receives no data, exactly like h = 0 in the two-class scheme.
    """

    def __init__(self, classes: list[ClassStripe] | list[tuple[int, int]]):
        normalized = [
            entry if isinstance(entry, ClassStripe) else ClassStripe(*entry) for entry in classes
        ]
        if not normalized:
            raise ValueError("need at least one server class")
        self.classes: tuple[ClassStripe, ...] = tuple(normalized)
        if self.round_size <= 0:
            raise ValueError(
                "striping config distributes no data: need sum(count_i * stripe_i) > 0"
            )
        # Precompute per-server (window start, width, class index).
        self._windows: list[tuple[int, int, int]] = []
        cursor = 0
        for class_index, cls in enumerate(self.classes):
            for _ in range(cls.count):
                self._windows.append((cursor, cls.stripe, class_index))
                cursor += cls.stripe

    @property
    def round_size(self) -> int:
        """Bytes per striping round: Σ count_i · stripe_i."""
        return sum(c.count * c.stripe for c in self.classes)

    @property
    def n_servers(self) -> int:
        return sum(c.count for c in self.classes)

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    @property
    def class_counts(self) -> tuple[int, ...]:
        """Servers per class."""
        return tuple(c.count for c in self.classes)

    @property
    def stripes(self) -> tuple[int, ...]:
        """Stripe size per class (the RST merge key)."""
        return tuple(c.stripe for c in self.classes)

    def server_window(self, server_id: int) -> tuple[int, int]:
        """In-round byte window [a, b) of ``server_id``."""
        if not (0 <= server_id < self.n_servers):
            raise IndexError(f"server_id {server_id} out of range 0..{self.n_servers - 1}")
        start, width, _ = self._windows[server_id]
        return (start, start + width)

    def class_of(self, server_id: int) -> int:
        """Performance-class index of a server."""
        if not (0 <= server_id < self.n_servers):
            raise IndexError(f"server_id {server_id} out of range 0..{self.n_servers - 1}")
        return self._windows[server_id][2]

    def decompose(self, offset: int, size: int) -> list[SubRequest]:
        """Split a logical request into one contiguous extent per server."""
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be >= 0")
        if size == 0:
            return []
        S = self.round_size
        end = offset + size
        subs: list[SubRequest] = []
        for server_id, (a, width, _) in enumerate(self._windows):
            b = a + width
            p_start = _server_bytes_below(offset, a, b, S)
            p_end = _server_bytes_below(end, a, b, S)
            if p_end > p_start:
                full, rem = divmod(offset, S)
                if a <= rem < b:
                    logical = offset
                elif rem < a:
                    logical = full * S + a
                else:
                    logical = (full + 1) * S + a
                subs.append(
                    SubRequest(
                        server_id=server_id,
                        offset=p_start,
                        size=p_end - p_start,
                        logical_offset=logical,
                    )
                )
        return subs

    def critical_params_per_class(self, offset: int, size: int) -> list[CriticalParams]:
        """Per-class (max sub-request size, touched count) — the K-class
        generalization of (s_m, s_n, m, n). ``s_n``/``n`` fields are unused
        (kept 0) since each class gets its own entry."""
        maxima = [0] * self.n_classes
        counts = [0] * self.n_classes
        for sub in self.decompose(offset, size):
            class_index = self.class_of(sub.server_id)
            counts[class_index] += 1
            maxima[class_index] = max(maxima[class_index], sub.size)
        return [
            CriticalParams(s_m=maxima[i], s_n=0, m=counts[i], n=0)
            for i in range(self.n_classes)
        ]

    def describe(self) -> str:
        """Legend label, e.g. ``"16K/64K/256K"``."""
        return "/".join(format_size(c.stripe) for c in self.classes)

    def to_dict(self) -> dict:
        """JSON-serializable form (see ``config_from_dict``)."""
        return {
            "type": "multiclass",
            "classes": [{"count": c.count, "stripe": c.stripe} for c in self.classes],
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MultiClassStripingConfig) and self.classes == other.classes
        )

    def __hash__(self) -> int:
        return hash(self.classes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.count}x{format_size(c.stripe)}" for c in self.classes)
        return f"MultiClassStripingConfig({inner})"

    @classmethod
    def from_two_class(cls, config: StripingConfig) -> "MultiClassStripingConfig":
        """Embed a two-class config (the K = 2 special case)."""
        return cls(
            [
                ClassStripe(config.n_hservers, config.hstripe),
                ClassStripe(config.n_sservers, config.sstripe),
            ]
        )


def config_from_dict(payload: dict):
    """Inverse of the configs' ``to_dict`` (RST persistence)."""
    kind = payload.get("type", "hybrid")
    if kind == "hybrid":
        return StripingConfig(
            n_hservers=payload["n_hservers"],
            n_sservers=payload["n_sservers"],
            hstripe=payload["hstripe"],
            sstripe=payload["sstripe"],
        )
    if kind == "multiclass":
        return MultiClassStripingConfig(
            [ClassStripe(row["count"], row["stripe"]) for row in payload["classes"]]
        )
    raise ValueError(f"unknown striping config type: {kind!r}")


class TieredFixedLayout(LayoutPolicy):
    """One multi-class stripe vector for the whole file."""

    def __init__(self, config: MultiClassStripingConfig):
        self.config = config

    def segments(self, offset: int, size: int) -> list[LayoutSegment]:
        if size < 0 or offset < 0:
            raise ValueError("offset and size must be >= 0")
        if size == 0:
            return []
        return [
            LayoutSegment(offset=offset, size=size, config=self.config, region_id=0, region_base=0)
        ]

    def describe(self) -> str:
        return self.config.describe()


class TieredPFS(ParallelFileSystem):
    """A simulated PFS over an ordered list of server tiers."""

    def __init__(
        self,
        sim: Simulator,
        tiers: list[list[FileServer]],
        network: NetworkModel,
        mds=None,
    ):
        if not tiers or not any(tiers):
            raise ValueError("need at least one tier with at least one server")
        self.tiers = [list(tier) for tier in tiers]
        servers = [server for tier in self.tiers for server in tier]
        super().__init__(sim, servers, network, mds=mds)

    @property
    def class_counts(self) -> tuple[int, ...]:
        return tuple(len(tier) for tier in self.tiers)

    @classmethod
    def build(
        cls,
        sim: Simulator,
        tier_devices: list[list[StorageDevice]],
        network: NetworkModel | None = None,
        nic_parallelism: int = 4,
    ) -> "TieredPFS":
        """Build from per-tier device lists (devices already seeded)."""
        network = network or NetworkModel()
        tiers = []
        for tier_index, devices in enumerate(tier_devices):
            tiers.append(
                [
                    FileServer(
                        sim,
                        device,
                        network,
                        name=f"tier{tier_index}.{i}",
                        nic_parallelism=nic_parallelism,
                    )
                    for i, device in enumerate(devices)
                ]
            )
        return cls(sim, tiers, network)
