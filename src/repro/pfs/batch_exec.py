"""Batched execution fast path: replay a columnar batch without processes.

:func:`replay_batch` serves every request of a
:class:`~repro.pfs.batch.RequestBatch` by replaying the discrete-event
simulation **arithmetically**, in two tiers that share one flat, fully
materialized job table (:class:`FlatPresplit` sub-requests, expanded with
replica mirror writes and physical extent bases, in MDS-dispatch order —
arrival order shifted by any sharded-cluster ring-hop delays):

1. the **columnar engine** (:mod:`repro.pfs.columnar`) evaluates every
   FIFO resource as a vectorized prefix-max/cumsum recurrence — no Python
   loop over sub-requests at all. It covers the common shape (single-op
   batch, stock device/network models) and *bails* losslessly when a
   precondition fails at run time;
2. the **event-heap replay** (the columnar tier's fallback) walks one flat
   heap of plain tuples instead of the generator-coroutine machinery
   (``Process`` objects, resource grant events, ``AllOf`` joins) that
   dominates wall-clock on million-request replays.

Neither tier is an approximation — both mirror the general path's event
cascade *hop for hop*:

- every schedule point of the general path (request bootstrap / issue-delay
  timeout, resource grant fire, service timeout) maps to the same simulated
  time and the same relative position, so same-timestamp ties break
  identically (the columnar tier bails on the one tie class whose order
  would depend on heap sequence numbers);
- resource state (FIFO queues, in-use counts, utilization intervals,
  granted counts) follows the same synchronous-grant semantics as
  :class:`repro.simulate.resources.Resource`;
- device service times are drawn at the grant hop in grant order — the heap
  tier by calling the real device model's ``service_time``, the columnar
  tier with bitwise-identical vectorized draws — so per-device RNG streams
  advance exactly as the general path would consume them;
- utilization deltas accumulate per resource in closure order and apply to
  the live monitors afterwards, preserving float-summation order.

The result — completion times, busy times, byte counters, RNG states,
checksum tag tables — is therefore byte-identical to spawning one process
per request.

Replication and integrity compose with the replay instead of forcing the
general path: mirror writes are ordinary jobs in the flat table (placed by
:meth:`ParallelFileSystem.replica_target`, extent-allocated in the same
first-touch order), and CRC bookkeeping commits from the flat arrays after
the timing replay (tag stamping is idempotent and order-independent, and
with no poisoned stripe units a verification can neither mismatch nor
alter timing). A filesystem with *poisoned* units falls back, since reads
could then raise mid-flight.

Because the replay assumes undisturbed FIFO service, it must only run when
the simulation is *quiescent* and no resilience machinery can fire:
:func:`fast_path_blocker` encodes that eligibility matrix and returns the
reason the batch must take the general path (or ``None`` when the fast path
is exact). :meth:`repro.pfs.filesystem.PFSFile.request_batch` consults it
on every submission and falls back transparently.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.devices.base import OpType
from repro.network.link import ContendedNetworkModel, NetworkModel
from repro.pfs import columnar
from repro.simulate.resources import Resource

__all__ = ["FlatPresplit", "fast_path_blocker", "replay_batch"]

# Event kinds of the unified replay heap. Each corresponds to one schedule
# point of the general path (see module docstring); the integer values are
# only identities, never compared (the heap orders by (time, seq)).
_ARRIVE = 0  # request bootstrap / issue-delay timeout maturing
_MDS_GRANT = 1  # MDS service slot grant firing
_MDS_EXIT = 2  # MDS lookup service timeout maturing
_SPAWN = 3  # sub-request process bootstrap
_NIC_GRANT = 4  # NIC flow slot grant firing
_NIC_DONE = 5  # NIC transfer timeout maturing
_DISK_GRANT = 6  # disk slot grant firing
_DISK_DONE = 7  # disk service timeout maturing


@dataclass
class FlatPresplit:
    """A batch's striping decomposition as flat sub-request columns.

    One entry per sub-request, ordered by (request, segment, server) —
    exactly the order the general path materializes them. ``offset`` is
    relative to the (region, server) extent; ``server`` is the striping
    config's server id (physical id once no server map is active, which
    the fast path guarantees). Produced by
    :meth:`repro.pfs.filesystem.PFSFile._presplit_flat`.
    """

    req: np.ndarray  # int64 request index
    server: np.ndarray  # int64 striping-config server id
    offset: np.ndarray  # int64 offset within the (region, server) extent
    size: np.ndarray  # int64 bytes
    region: np.ndarray  # int64 region id (extent namespace key)


@dataclass
class _JobSet:
    """Fully materialized jobs of one replay, in MDS-dispatch order.

    Replica mirror writes are expanded into ordinary jobs (each right after
    its primary, matching the general path's spawn order) and ``offset`` is
    physical (extent base applied). Requests stay contiguous.
    """

    req: np.ndarray  # int64 batch index
    server: np.ndarray  # int64 physical server id
    offset: np.ndarray  # int64 physical offset
    size: np.ndarray  # int64 bytes
    is_write: np.ndarray  # bool
    n_mirror: int  # how many jobs are replica mirror writes


class _ServerReplay:
    """Shadow FIFO state of one :class:`FileServer` during a heap replay.

    Mirrors ``Resource`` semantics: grants are issued synchronously (state
    updated at issue time), the grant *fire* is the heap tuple. Busy-time
    deltas collect per closed interval and are applied to the live monitors
    in order at the end of the replay.
    """

    __slots__ = (
        "server",
        "service_time",
        "transfer_time",
        "nic_cap",
        "nic_in_use",
        "nic_queue",
        "nic_since",
        "nic_deltas",
        "nic_granted",
        "disk_in_use",
        "disk_queue",
        "disk_since",
        "disk_deltas",
        "disk_granted",
        "bytes_served",
        "subrequests",
    )

    def __init__(self, server):
        self.server = server
        self.service_time = server.device.service_time
        self.transfer_time = server.network.transfer_time
        self.nic_cap = server.nic.capacity
        self.nic_in_use = 0
        self.nic_queue = deque()
        self.nic_since = 0.0
        self.nic_deltas = []
        self.nic_granted = 0
        self.disk_in_use = 0
        self.disk_queue = deque()
        self.disk_since = 0.0
        self.disk_deltas = []
        self.disk_granted = 0
        self.bytes_served = 0
        self.subrequests = 0


def fast_path_blocker(handle, batch=None) -> str | None:
    """Why ``handle`` cannot take the batched fast path right now, or None.

    The replay is exact only when the simulation is quiescent (nothing else
    scheduled or running — this also excludes installed fault injectors,
    whose timer processes sit on the heap from installation) and every
    component is in its plain, undisturbed configuration: FIFO resources
    with no holders, waiters, or stall windows; no retry/failover policies;
    no degraded routing or server maps; stateless network models; tracing
    off. Replication and checksumming do *not* block — mirror writes and
    CRC bookkeeping replay exactly — unless corruption faults have poisoned
    stripe units, in which case a read could raise mid-flight and the full
    repair machinery must run.

    A sharded :class:`~repro.pfs.mds_cluster.MetadataCluster` replays as
    long as the ring is whole and calm: no armed crash interrupts, every
    shard alive with an idle plain service queue, and no entry-time tie
    whose general-path order would depend on event sequence numbers (the
    per-batch analysis of :func:`_plan_mds`, which needs ``batch``). The
    client-side metadata cache likewise replays in closed form via the
    plan. Anything else returns a short reason string used both for the
    fallback decision and the ``pfs.batch.fallback.*`` counters.
    """
    pfs = handle.pfs
    sim = pfs.sim
    if sim.tracer is not None:
        return "tracing"
    if sim._active_process is not None or sim._heap:
        return "simulator-busy"
    if handle.retry is not None or pfs.retry is not None:
        return "retry-policy"
    if handle.hedge is not None:
        return "hedged-reads"
    if handle.server_map is not None:
        return "server-map"
    if pfs.health.route_map is not None:
        return "degraded-routing"
    if pfs.rebuild is not None or pfs.replica_overrides:
        # A rebuild manager's failure hooks (and any committed placement
        # overrides) change replica addressing mid-flight; only the general
        # path resolves them.
        return "rebuild"
    if pfs.write_quorum is not None and handle.layout.max_replicas() > 1:
        # Quorum-acknowledged writes detach trailing mirrors from the ack;
        # the closed-form replay assumes fully synchronous mirroring.
        return "write-quorum"
    integrity = pfs.integrity
    if integrity is not None and integrity.units_poisoned > 0:
        return "integrity-poisoned"
    mds = pfs.mds
    sharded = hasattr(mds, "crash_shard")
    if sharded:
        # Armed injectors also imply a non-empty heap (caught above); the
        # flag check is defense in depth against manual arming.
        if mds._interruptible:
            return "mds-interruptible"
        if not all(mds.health.alive):
            return "mds-degraded"
        if len(mds.ring) != mds.n_shards:
            return "mds-ring-changed"
        for shard in mds.shards:
            service = shard._service
            if service is None:
                if shard.lookup_time(handle.layout.region_count()) > 0:
                    return "mds-detached"
            elif type(service) is not Resource:
                return "custom-mds"
            elif service._held or service._in_use or service._queue:
                return "mds-busy"
        if batch is None:
            return "mds-cluster"
    else:
        service = mds._service
        if service is None:
            if mds.lookup_time(handle.layout.region_count()) > 0:
                return "mds-detached"
        else:
            if type(service) is not Resource:
                return "custom-mds"
            if service._held or service._in_use or service._queue:
                return "mds-busy"
        if pfs.mds_cache is not None and batch is None:
            return "mds-cache"
    if batch is not None and (sharded or pfs.mds_cache is not None):
        t0 = sim.now
        arrival_times, arrival_order = _arrivals(batch, t0)
        _, reason = _plan_mds(handle, batch, t0, arrival_times, arrival_order)
        if reason is not None:
            return reason
    for server in pfs.servers:
        reason = server.fast_batch_blocker()
        if reason is not None:
            return reason
        if type(server.network) not in (NetworkModel, ContendedNetworkModel):
            return "custom-network"
    return None


def _arrivals(batch, t0: float) -> tuple[np.ndarray, np.ndarray | None]:
    """Per-request arrival instants and arrival-order permutation.

    The general path spawns one process per request in batch order; a
    request with a non-zero issue delay yields one timeout before
    consulting the MDS. Hence arrival *ties* at ``t0`` resolve with all
    zero-delay requests (bootstrap hop only) ahead of all delayed ones
    (timeout hop), each group in batch order. ``None`` for the order means
    batch order (untimed batch).
    """
    n = len(batch)
    issue = batch.issue_times
    if issue is None:
        return np.full(n, t0, dtype=np.float64), None
    arrival_times = t0 + issue
    immediate = np.flatnonzero(issue == 0.0)
    delayed = np.flatnonzero(issue != 0.0)
    arrival_order = np.concatenate(
        (immediate, delayed[np.argsort(arrival_times[delayed], kind="stable")])
    )
    return arrival_times, arrival_order


@dataclass
class _MdsPlan:
    """Closed-form MDS stage of one batched replay.

    Produced by :func:`_plan_mds` (pure analysis, no state change) and
    consumed by both replay tiers for timing and by :func:`_commit_mds`
    for the timing-independent counters. ``mode``:

    - ``"queue"``: every request performs a real consult — FIFO service at
      ``service`` (the owner shard's under a sharded cluster) entered at
      per-request instants (arrival plus ring-hop delay), exiting — and
      dispatching sub-requests — in ``entry_order``;
    - ``"fill"``: client cache miss — the first arrival leads one real
      consult, arrivals strictly before its fill instant coalesce onto it,
      later arrivals hit the filled entry; nobody else touches the MDS;
    - ``"hit"``: the cache already holds a current-generation entry —
      every request spawns at its own arrival, zero MDS load;
    - ``"empty"``: zero-request batch, nothing to do.
    """

    mode: str
    lookup: float = 0.0
    service: object = None
    #: "queue": absolute MDS-entry instants (batch order) and the batch
    #: indices in entry order (None = batch order).
    entry_times: np.ndarray | None = None
    entry_order: np.ndarray | None = None
    #: "fill"/"hit": absolute sub-request spawn instants, batch order.
    spawn_times: np.ndarray | None = None
    #: Permutation for :func:`_materialize`'s first-touch extent order
    #: (None = batch order).
    dispatch_order: np.ndarray | None = None
    cluster: object = None
    owner: object = None
    hops_total: int = 0
    hops_max: int = 0
    #: "fill": the leader's single busy interval (release - grant), kept as
    #: the exact float difference the live monitor would accumulate.
    leader_busy: float = 0.0
    n_consults: int = 0
    n_coalesced: int = 0
    n_hits: int = 0


def _plan_mds(
    handle, batch, t0: float, arrival_times, arrival_order
) -> tuple["_MdsPlan | None", str | None]:
    """Plan the batch's MDS stage: ``(plan, None)`` or ``(None, reason)``.

    Mutates nothing, so :func:`fast_path_blocker` calls it to pre-flight
    the tie classes whose general-path order would depend on event
    sequence numbers, and :func:`replay_batch` calls it again (on the
    unchanged quiescent state) to drive the replay.
    """
    pfs = handle.pfs
    mds = pfs.mds
    n = len(batch)
    if n == 0:
        return _MdsPlan(mode="empty"), None
    cluster = mds if hasattr(mds, "crash_shard") else None
    lookup = mds.lookup_time(handle.layout.region_count())
    cache = pfs.mds_cache
    if cache is not None:
        if cache.is_valid(handle):
            return (
                _MdsPlan(
                    mode="hit",
                    spawn_times=arrival_times.copy(),
                    dispatch_order=arrival_order,
                    n_hits=n,
                ),
                None,
            )
        # Miss: the first arrival leads the one real consult; it finds the
        # (idle, the blocker's guarantee) service immediately.
        leader = int(arrival_order[0]) if arrival_order is not None else 0
        leader_hops = 0
        owner = None
        service = mds._service if cluster is None else None
        if cluster is not None:
            members = cluster.ring.members()
            entry = members[cluster._consult_seq % len(members)]
            leader_hops, home = cluster.ring.route(entry, handle.name, cluster.routing)
            owner = cluster.shards[home]
            service = owner._service
        t_enter = float(arrival_times[leader])
        if cluster is not None and leader_hops and cluster.hop_latency > 0:
            t_enter = t_enter + leader_hops * cluster.hop_latency
        t_fill = t_enter + lookup if lookup > 0 else t_enter
        # An arrival at exactly the fill instant resolves by event sequence
        # numbers (hit vs. coalesced wait) — not replayed arithmetically.
        ties = int(np.count_nonzero(arrival_times == t_fill))
        if t_fill == arrival_times[leader]:
            ties -= 1  # the leader itself (zero-cost consult)
        if ties:
            return None, "mds-fill-tie"
        n_coalesced = int(np.count_nonzero(arrival_times < t_fill))
        if arrival_times[leader] < t_fill:
            n_coalesced -= 1
        return (
            _MdsPlan(
                mode="fill",
                lookup=lookup,
                service=service,
                spawn_times=np.where(arrival_times > t_fill, arrival_times, t_fill),
                dispatch_order=arrival_order,
                cluster=cluster,
                owner=owner,
                hops_total=leader_hops,
                hops_max=leader_hops,
                leader_busy=t_fill - t_enter,
                n_consults=1,
                n_coalesced=n_coalesced,
                n_hits=int(np.count_nonzero(arrival_times > t_fill)),
            ),
            None,
        )
    if cluster is None:
        return (
            _MdsPlan(
                mode="queue",
                lookup=lookup,
                service=mds._service,
                entry_times=arrival_times,
                entry_order=arrival_order,
                dispatch_order=arrival_order,
                n_consults=n,
            ),
            None,
        )
    # Uncached sharded cluster: entry shards rotate with the consult
    # sequence number (assigned in arrival order), and each request pays
    # its ring walk before queueing at the owner — so MDS entry order is
    # arrival order shifted by per-request hop delays.
    key = handle.name
    members = cluster.ring.members()
    hops_m = np.fromiter(
        (cluster.ring.route(member, key, cluster.routing)[0] for member in members),
        dtype=np.int64,
        count=len(members),
    )
    owner = cluster.shards[cluster.ring.owner_of(key)]
    ranks = (cluster._consult_seq + np.arange(n, dtype=np.int64)) % len(members)
    hops_by_rank = hops_m[ranks]
    hops_max = int(hops_by_rank.max())
    entry_times = arrival_times
    entry_order = arrival_order
    if cluster.hop_latency > 0 and hops_max > 0:
        delay = hops_by_rank * cluster.hop_latency
        if arrival_order is None:
            # Untimed batch: hop timers are all scheduled at t0 in batch
            # order, so equal entry instants resolve in batch order — which
            # is exactly what a stable sort preserves.
            entry_times = arrival_times + delay
            entry_order = np.argsort(entry_times, kind="stable")
        else:
            delay_batch = np.empty(n, dtype=np.float64)
            delay_batch[arrival_order] = delay
            entry_times = arrival_times + delay_batch
            # With staggered arrivals, hop timers are scheduled at each
            # request's own arrival, so equal post-t0 entry instants can
            # resolve by sequence numbers the closed form cannot always
            # reproduce. (Ties at t0 are the zero-hop immediates, which
            # enter inline in batch order — safe.)
            late = entry_times[entry_times > t0]
            if late.shape[0] > 1 and np.unique(late).shape[0] != late.shape[0]:
                return None, "mds-entry-tie"
            entry_order = arrival_order[
                np.argsort(entry_times[arrival_order], kind="stable")
            ]
    return (
        _MdsPlan(
            mode="queue",
            lookup=lookup,
            service=owner._service,
            entry_times=entry_times,
            entry_order=entry_order,
            dispatch_order=entry_order,
            cluster=cluster,
            owner=owner,
            hops_total=int(hops_by_rank.sum()),
            hops_max=hops_max,
            n_consults=n,
        ),
        None,
    )


def _commit_mds(pfs, handle, plan: _MdsPlan) -> None:
    """Apply a plan's timing-independent MDS/cache counters after a replay."""
    if plan.mode == "empty":
        return
    cluster = plan.cluster
    if plan.n_consults:
        pfs.mds.lookup_count += plan.n_consults
        if cluster is not None:
            cluster._consult_seq += plan.n_consults
            cluster.hops_total += plan.hops_total
            if plan.hops_max > cluster.hops_max:
                cluster.hops_max = plan.hops_max
            plan.owner.lookup_count += plan.n_consults
    cache = pfs.mds_cache
    if plan.mode == "fill":
        if plan.lookup > 0:
            # The leader's lone grant: one busy interval, one grant count.
            plan.service.monitor.busy_time += plan.leader_busy
            plan.service.granted_count += 1
        cache.misses += 1
        cache.coalesced += plan.n_coalesced
        cache.fill(handle)
    if plan.mode in ("fill", "hit"):
        cache.hits += plan.n_hits
        cache.audit_many(handle, plan.n_hits)


def replay_batch(handle, batch, flat: FlatPresplit) -> tuple[np.ndarray, float, int, bool]:
    """Serve ``batch`` on ``handle`` arithmetically; see module docstring.

    Args:
        handle: the :class:`~repro.pfs.filesystem.PFSFile` being driven.
        batch: the :class:`~repro.pfs.batch.RequestBatch` to serve.
        flat: the handle's flat presplit (layout snapshot at submission).

    Returns:
        ``(elapsed, t_end, n_subrequests, used_columnar)`` — per-request
        elapsed seconds in batch order, the simulated completion time of
        the whole batch, the number of sub-requests served (replica mirrors
        included), and whether the columnar tier handled it.

    Caller must have verified :func:`fast_path_blocker` returned None; the
    replay itself does not re-check and would silently diverge otherwise.
    """
    pfs = handle.pfs
    sim = pfs.sim
    t0 = sim.now
    n = len(batch)

    arrival_times, arrival_order = _arrivals(batch, t0)
    # MDS service is FIFO with one uniform service time per batch, so
    # requests *exit* the MDS — and first-touch their extents — in the
    # plan's dispatch order (MDS entry order: arrival order shifted by any
    # sharded ring-hop delays; plain arrival order for cache hits/fills).
    plan, reason = _plan_mds(handle, batch, t0, arrival_times, arrival_order)
    if plan is None:
        raise RuntimeError(f"replay_batch without fast-path pre-flight: {reason}")

    jobs = _materialize(handle, batch, flat, plan.dispatch_order)

    completion = None
    used_columnar = False
    single = batch.single_op
    if single is not None and columnar.eligible(pfs, batch):
        completion = columnar.replay_columnar(
            pfs, handle, jobs, single is OpType.READ, plan
        )
        used_columnar = completion is not None
    if completion is None:
        completion = _replay_heap(pfs, handle, batch, jobs, plan)

    # Shared (timing-independent) commits.
    _commit_mds(pfs, handle, plan)
    if jobs.n_mirror:
        pfs.integrity.mirrored_writes += jobs.n_mirror
    _commit_integrity(pfs, jobs)
    if n:
        is_read_col = batch.is_read
        read_bytes = int(batch.sizes[is_read_col].sum())
        handle.bytes_read += read_bytes
        handle.bytes_written += batch.total_bytes - read_bytes
        t_end = float(completion.max())
    else:
        t_end = t0
    return completion - arrival_times, t_end, int(jobs.req.shape[0]), used_columnar


def _materialize(handle, batch, flat: FlatPresplit, dispatch_order) -> _JobSet:
    """Expand a flat presplit into the replay's physical job table.

    Reorders sub-requests into MDS-dispatch order (the order requests exit
    the MDS stage and spawn their subs; ``None`` = batch order),
    interleaves replica mirror writes after their primaries, retargets
    them via :meth:`ParallelFileSystem.replica_target`, and assigns extent
    bases in first-occurrence order — the exact ``_extent_base`` call
    sequence the general path would issue, so first-touch allocation
    matches.
    """
    pfs = handle.pfs
    req = flat.req
    server = flat.server
    offset = flat.offset
    size = flat.size
    region = flat.region
    n = len(batch)
    n_jobs = req.shape[0]

    if dispatch_order is not None and n_jobs:
        rank = np.empty(n, dtype=np.int64)
        rank[dispatch_order] = np.arange(n, dtype=np.int64)
        perm = np.argsort(rank[req], kind="stable")
        req = req[perm]
        server = server[perm]
        offset = offset[perm]
        size = size[perm]
        region = region[perm]

    is_write = (
        ~batch.is_read[req] if n_jobs else np.zeros(0, dtype=bool)
    )

    # Replica expansion: one extra write job per (mirror copy, write sub),
    # immediately after its primary — the general path's spawn order.
    n_mirror = 0
    copy_no = None
    if handle._replicated and n_jobs:
        layout = handle.layout
        regs = np.unique(region)
        rcounts = np.asarray(
            [layout.replica_count(int(r)) for r in regs.tolist()], dtype=np.int64
        )
        copies = rcounts[np.searchsorted(regs, region)]
        copies = np.where(is_write, copies, 1)
        if (copies > 1).any():
            idx = np.repeat(np.arange(n_jobs, dtype=np.int64), copies)
            first = (np.cumsum(copies) - copies)[idx]
            copy_no = np.arange(idx.shape[0], dtype=np.int64) - first
            req = req[idx]
            offset = offset[idx]
            size = size[idx]
            region = region[idx]
            is_write = is_write[idx]
            server = server[idx]
            n_mirror = int((copy_no > 0).sum())
            mult = int(copy_no.max()) + 1
            key = server * mult + copy_no
            uniq, inv = np.unique(key, return_inverse=True)
            targets = np.empty(uniq.shape[0], dtype=np.int64)
            for u, packed in enumerate(uniq.tolist()):
                sid, copy = divmod(packed, mult)
                targets[u] = sid if copy == 0 else pfs.replica_target(sid, copy)
            server = targets[inv]
            n_jobs = req.shape[0]

    # Extent bases, allocated in first-occurrence (= materialization) order.
    if n_jobs:
        copy_vals = (
            copy_no if copy_no is not None else np.zeros(n_jobs, dtype=np.int64)
        )
        region_span = int(region.max()) + 1
        key = (copy_vals * region_span + region) * pfs.n_servers + server
        uniq, first_at, inv = np.unique(key, return_index=True, return_inverse=True)
        bases = np.empty(uniq.shape[0], dtype=np.int64)
        extent_ns = f"{handle.name}#g{handle.layout_generation}"
        extent_base = pfs._extent_base
        for u in np.argsort(first_at, kind="stable").tolist():
            j = int(first_at[u])
            copy = int(copy_vals[j])
            ns = extent_ns if copy == 0 else f"{extent_ns}~r{copy}"
            bases[u] = extent_base(ns, int(region[j]), int(server[j]))
        offset = offset + bases[inv]

    return _JobSet(
        req=req,
        server=server,
        offset=offset,
        size=size,
        is_write=is_write,
        n_mirror=n_mirror,
    )


def _commit_integrity(pfs, jobs: _JobSet) -> None:
    """Apply a replay's CRC bookkeeping from the flat job table.

    Exact because with no poisoned stripe units (the fast path guarantee)
    checksum state never feeds back into timing or control flow during the
    replay: writes stamp clean tags (idempotent, order-independent — the
    tag of a block is a pure function of its identity) and reads count one
    verification each, finding nothing. Runs after either replay tier.
    """
    if pfs.integrity is None or not jobs.req.shape[0]:
        return
    acct = pfs.integrity
    servers = pfs.servers
    order = np.argsort(jobs.server, kind="stable")
    sorted_server = jobs.server[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_server[1:] != sorted_server[:-1]))
    )
    stops = np.concatenate((starts[1:], [sorted_server.shape[0]]))
    for a, b in zip(starts.tolist(), stops.tolist()):
        checks = servers[int(sorted_server[a])].checksums
        if checks is None:
            continue
        idx = order[a:b]
        write_mask = jobs.is_write[idx]
        acct.checks += int((~write_mask).sum())
        if write_mask.any():
            widx = idx[write_mask]
            block_size = checks.block_size
            first = jobs.offset[widx] // block_size
            counts = (jobs.offset[widx] + jobs.size[widx] - 1) // block_size - first + 1
            blocks = np.repeat(first, counts) + (
                np.arange(int(counts.sum()), dtype=np.int64)
                - np.repeat(np.cumsum(counts) - counts, counts)
            )
            tags = checks._tags
            expected = checks._expected
            for block in np.unique(blocks).tolist():
                tags[block] = expected(block)


def _replay_heap(pfs, handle, batch, jobs: _JobSet, plan: _MdsPlan) -> np.ndarray:
    """Event-heap tier: replay the materialized jobs tuple by tuple.

    Exact for any batch shape the blocker admits (mixed ops, varying NIC
    service at capacity > 1, schedules with grant/departure ties — all the
    cases the columnar tier bails on). The MDS stage comes pre-analyzed in
    ``plan``: queue mode feeds the shadow FIFO at the planned entry
    instants; fill/hit modes skip the shadow MDS entirely and spawn each
    request's sub-jobs at its planned spawn instant. Commits resource
    monitors/counters; returns absolute per-request completion times in
    batch order.
    """
    n = len(batch)
    is_read_col = batch.is_read
    read_op = OpType.READ
    write_op = OpType.WRITE

    if plan.mode == "queue":
        lookup = plan.lookup
        mds_enabled = lookup > 0
        service = plan.service
        mds_cap = service.capacity if service is not None else 0
        entry_t = plan.entry_times
        order = plan.entry_order
    else:
        lookup = 0.0
        mds_enabled = False
        service = None
        mds_cap = 0
        entry_t = plan.spawn_times
        order = plan.dispatch_order
    if n == 0:
        entry_t = np.zeros(0, dtype=np.float64)

    # ``entry_t[order]`` is nondecreasing, so the tuple list is already a
    # valid heap; the rank doubles as the tie-breaking sequence number,
    # reproducing the general path's same-instant resume order.
    if order is None:
        times = entry_t.tolist()
        heap = [(times[k], k, _ARRIVE, k) for k in range(n)]
    else:
        times = entry_t[order].tolist()
        heap = [
            (times[r], r, _ARRIVE, int(i)) for r, i in enumerate(order.tolist())
        ]

    # Build per-request job lists from the flat table (requests are
    # contiguous in it, in dispatch order).
    states: dict[int, _ServerReplay] = {}
    servers = pfs.servers
    jobs_by_request: list[list | None] = [None] * n
    req_list = jobs.req.tolist()
    server_list = jobs.server.tolist()
    offset_list = jobs.offset.tolist()
    size_list = jobs.size.tolist()
    write_list = jobs.is_write.tolist()
    current: list | None = None
    prev_req = -1
    for k in range(len(req_list)):
        i = req_list[k]
        if i != prev_req:
            current = jobs_by_request[i] = []
            prev_req = i
        sid = server_list[k]
        ss = states.get(sid)
        if ss is None:
            ss = states[sid] = _ServerReplay(servers[sid])
        is_write = write_list[k]
        # job = (server state, is_write, op, physical offset, size,
        #        batch index)
        current.append(
            (ss, is_write, write_op if is_write else read_op, offset_list[k], size_list[k], i)
        )
    for i in range(n):
        if jobs_by_request[i] is None:
            jobs_by_request[i] = []

    remaining = [len(job_list) for job_list in jobs_by_request]
    completion = entry_t.copy()

    # Shadow MDS service state (same Resource semantics as the servers').
    m_in_use = 0
    m_queue: deque = deque()
    m_since = 0.0
    m_deltas: list[float] = []
    m_granted = 0

    seq = len(heap)
    push = heapq.heappush
    pop = heapq.heappop

    while heap:
        t, _, kind, payload = pop(heap)
        if kind == _NIC_GRANT:
            # The waiter resumes: compute the transfer and schedule its end.
            push(heap, (t + payload[0].transfer_time(payload[4]), seq, _NIC_DONE, payload))
            seq += 1
        elif kind == _DISK_GRANT:
            # Resume hop: the device RNG advances here, matching the order
            # the general path's generator would consume it.
            push(
                heap,
                (t + payload[0].service_time(payload[2], payload[3], payload[4]), seq, _DISK_DONE, payload),
            )
            seq += 1
        elif kind == _NIC_DONE:
            ss = payload[0]
            ss.nic_in_use -= 1
            if ss.nic_in_use == 0:
                ss.nic_deltas.append(t - ss.nic_since)
            if ss.nic_queue:
                waiter = ss.nic_queue.popleft()
                if ss.nic_in_use == 0:
                    ss.nic_since = t
                ss.nic_in_use += 1
                ss.nic_granted += 1
                push(heap, (t, seq, _NIC_GRANT, waiter))
                seq += 1
            if payload[1]:  # write: disk stage next
                if ss.disk_in_use or ss.disk_queue:
                    ss.disk_queue.append(payload)
                else:
                    ss.disk_in_use = 1
                    ss.disk_granted += 1
                    ss.disk_since = t
                    push(heap, (t, seq, _DISK_GRANT, payload))
                    seq += 1
            else:  # read: payload delivered, sub-request complete
                ss.bytes_served += payload[4]
                ss.subrequests += 1
                i = payload[5]
                remaining[i] -= 1
                if not remaining[i]:
                    completion[i] = t
        elif kind == _DISK_DONE:
            ss = payload[0]
            ss.disk_in_use = 0
            ss.disk_deltas.append(t - ss.disk_since)
            if ss.disk_queue:
                waiter = ss.disk_queue.popleft()
                ss.disk_since = t
                ss.disk_in_use = 1
                ss.disk_granted += 1
                push(heap, (t, seq, _DISK_GRANT, waiter))
                seq += 1
            if payload[1]:  # write: persisted, sub-request complete
                ss.bytes_served += payload[4]
                ss.subrequests += 1
                i = payload[5]
                remaining[i] -= 1
                if not remaining[i]:
                    completion[i] = t
            else:  # read: NIC stage next
                if ss.nic_in_use < ss.nic_cap and not ss.nic_queue:
                    if ss.nic_in_use == 0:
                        ss.nic_since = t
                    ss.nic_in_use += 1
                    ss.nic_granted += 1
                    push(heap, (t, seq, _NIC_GRANT, payload))
                    seq += 1
                else:
                    ss.nic_queue.append(payload)
        elif kind == _SPAWN:
            ss = payload[0]
            if payload[1]:  # write: NIC first (client -> server)
                if ss.nic_in_use < ss.nic_cap and not ss.nic_queue:
                    if ss.nic_in_use == 0:
                        ss.nic_since = t
                    ss.nic_in_use += 1
                    ss.nic_granted += 1
                    push(heap, (t, seq, _NIC_GRANT, payload))
                    seq += 1
                else:
                    ss.nic_queue.append(payload)
            else:  # read: disk first
                if ss.disk_in_use or ss.disk_queue:
                    ss.disk_queue.append(payload)
                else:
                    ss.disk_in_use = 1
                    ss.disk_granted += 1
                    ss.disk_since = t
                    push(heap, (t, seq, _DISK_GRANT, payload))
                    seq += 1
        elif kind == _MDS_GRANT:
            push(heap, (t + lookup, seq, _MDS_EXIT, payload))
            seq += 1
        elif kind == _MDS_EXIT:
            m_in_use -= 1
            if m_in_use == 0:
                m_deltas.append(t - m_since)
            if m_queue:
                nxt = m_queue.popleft()
                if m_in_use == 0:
                    m_since = t
                m_in_use += 1
                m_granted += 1
                push(heap, (t, seq, _MDS_GRANT, nxt))
                seq += 1
            job_list = jobs_by_request[payload]
            if job_list:
                for job in job_list:
                    push(heap, (t, seq, _SPAWN, job))
                    seq += 1
            else:
                completion[payload] = t
        else:  # _ARRIVE
            if mds_enabled:
                if m_in_use < mds_cap and not m_queue:
                    if m_in_use == 0:
                        m_since = t
                    m_in_use += 1
                    m_granted += 1
                    push(heap, (t, seq, _MDS_GRANT, payload))
                    seq += 1
                else:
                    m_queue.append(payload)
            else:  # zero-cost consult returns inline; spawn subs now
                job_list = jobs_by_request[payload]
                if job_list:
                    for job in job_list:
                        push(heap, (t, seq, _SPAWN, job))
                        seq += 1
                else:
                    completion[payload] = t

    # Fold the shadow state back into the live components. Busy-time deltas
    # apply per resource in interval-closure order — float summation order
    # matches the general path's monitor arithmetic.
    for ss in states.values():
        server = ss.server
        nic_monitor = server.nic.monitor
        for delta in ss.nic_deltas:
            nic_monitor.busy_time += delta
        server.nic.granted_count += ss.nic_granted
        disk_monitor = server.disk.monitor
        for delta in ss.disk_deltas:
            disk_monitor.busy_time += delta
        server.disk.granted_count += ss.disk_granted
        server.bytes_served += ss.bytes_served
        server.subrequests_served += ss.subrequests
    if service is not None and m_deltas:
        service_monitor = service.monitor
        for delta in m_deltas:
            service_monitor.busy_time += delta
    if service is not None:
        service.granted_count += m_granted

    return completion
