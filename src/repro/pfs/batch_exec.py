"""Batched execution fast path: replay a columnar batch without processes.

:func:`replay_batch` serves every request of a
:class:`~repro.pfs.batch.RequestBatch` by replaying the discrete-event
simulation **arithmetically**: one flat heap of plain tuples stands in for
the generator-coroutine machinery (``Process`` objects, resource grant
events, ``AllOf`` joins) that dominates wall-clock on million-request
replays. The replay is not an approximation — it mirrors the general path's
event cascade *hop for hop*:

- every schedule point of the general path (request bootstrap / issue-delay
  timeout, resource grant fire, service timeout) maps to exactly one tuple
  pushed at the same simulated time and the same relative position, so
  same-timestamp ties break identically;
- resource state (FIFO queues, in-use counts, utilization intervals,
  granted counts) is tracked with the same synchronous-grant semantics as
  :class:`repro.simulate.resources.Resource`;
- device service times are drawn by calling the **real** device model's
  ``service_time`` at the grant-fire hop, so per-device RNG streams advance
  in exactly the order the general path would consume them;
- utilization deltas are accumulated per resource in closure order and
  applied to the live monitors afterwards, preserving float-summation
  order.

The result — completion times, busy times, byte counters, RNG states — is
therefore byte-identical to spawning one process per request.

Because the replay assumes undisturbed FIFO service, it must only run when
the simulation is *quiescent* and no resilience machinery can fire:
:func:`fast_path_blocker` encodes that eligibility matrix and returns the
reason the batch must take the general path (or ``None`` when the fast path
is exact). :meth:`repro.pfs.filesystem.PFSFile.request_batch` consults it
on every submission and falls back transparently.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from repro.devices.base import OpType
from repro.network.link import ContendedNetworkModel, NetworkModel
from repro.simulate.resources import Resource

__all__ = ["fast_path_blocker", "replay_batch"]

# Event kinds of the unified replay heap. Each corresponds to one schedule
# point of the general path (see module docstring); the integer values are
# only identities, never compared (the heap orders by (time, seq)).
_ARRIVE = 0  # request bootstrap / issue-delay timeout maturing
_MDS_GRANT = 1  # MDS service slot grant firing
_MDS_EXIT = 2  # MDS lookup service timeout maturing
_SPAWN = 3  # sub-request process bootstrap
_NIC_GRANT = 4  # NIC flow slot grant firing
_NIC_DONE = 5  # NIC transfer timeout maturing
_DISK_GRANT = 6  # disk slot grant firing
_DISK_DONE = 7  # disk service timeout maturing


class _ServerReplay:
    """Shadow FIFO state of one :class:`FileServer` during a replay.

    Mirrors ``Resource`` semantics: grants are issued synchronously (state
    updated at issue time), the grant *fire* is the heap tuple. Busy-time
    deltas collect per closed interval and are applied to the live monitors
    in order at the end of the replay.
    """

    __slots__ = (
        "server",
        "service_time",
        "transfer_time",
        "nic_cap",
        "nic_in_use",
        "nic_queue",
        "nic_since",
        "nic_deltas",
        "nic_granted",
        "disk_in_use",
        "disk_queue",
        "disk_since",
        "disk_deltas",
        "disk_granted",
        "bytes_served",
        "subrequests",
    )

    def __init__(self, server):
        self.server = server
        self.service_time = server.device.service_time
        self.transfer_time = server.network.transfer_time
        self.nic_cap = server.nic.capacity
        self.nic_in_use = 0
        self.nic_queue = deque()
        self.nic_since = 0.0
        self.nic_deltas = []
        self.nic_granted = 0
        self.disk_in_use = 0
        self.disk_queue = deque()
        self.disk_since = 0.0
        self.disk_deltas = []
        self.disk_granted = 0
        self.bytes_served = 0
        self.subrequests = 0


def fast_path_blocker(handle) -> str | None:
    """Why ``handle`` cannot take the batched fast path right now, or None.

    The replay is exact only when the simulation is quiescent (nothing else
    scheduled or running — this also excludes installed fault injectors,
    whose timer processes sit on the heap from installation) and every
    component is in its plain, undisturbed configuration: FIFO resources
    with no holders, waiters, or stall windows; no retry/failover policies;
    no degraded routing or server maps; stateless network models; tracing
    off. Anything else returns a short reason string used both for the
    fallback decision and the ``pfs.batch.fallback.*`` counters.
    """
    pfs = handle.pfs
    sim = pfs.sim
    if sim.tracer is not None:
        return "tracing"
    if sim._active_process is not None or sim._heap:
        return "simulator-busy"
    if handle.retry is not None or pfs.retry is not None:
        return "retry-policy"
    if handle._replicated:
        return "replication"
    if handle.server_map is not None:
        return "server-map"
    if pfs.health.route_map is not None:
        return "degraded-routing"
    mds = pfs.mds
    service = mds._service
    if service is None:
        if mds.lookup_time(handle.layout.region_count()) > 0:
            return "mds-detached"
    else:
        if type(service) is not Resource:
            return "custom-mds"
        if service._held or service._in_use or service._queue:
            return "mds-busy"
    for server in pfs.servers:
        reason = server.fast_batch_blocker()
        if reason is not None:
            return reason
        if type(server.network) not in (NetworkModel, ContendedNetworkModel):
            return "custom-network"
    return None


def replay_batch(handle, batch, presplits) -> tuple[np.ndarray, float, int]:
    """Serve ``batch`` on ``handle`` arithmetically; see module docstring.

    Args:
        handle: the :class:`~repro.pfs.filesystem.PFSFile` being driven.
        batch: the :class:`~repro.pfs.batch.RequestBatch` to serve.
        presplits: per-request ``[(segment, subrequests), ...]`` lists from
            the handle's presplit pass (layout snapshot at submission).

    Returns:
        ``(elapsed, t_end, n_subrequests)`` — per-request elapsed seconds
        in batch order, the simulated completion time of the whole batch,
        and the number of sub-requests served.

    Caller must have verified :func:`fast_path_blocker` returned None; the
    replay itself does not re-check and would silently diverge otherwise.
    """
    pfs = handle.pfs
    sim = pfs.sim
    t0 = sim.now
    n = len(batch)
    is_read_col = batch.is_read
    read_op = OpType.READ
    write_op = OpType.WRITE

    mds = pfs.mds
    lookup = mds.lookup_time(handle.layout.region_count())
    mds_enabled = lookup > 0
    service = mds._service
    mds_cap = service.capacity if service is not None else 0

    # Arrival instants. The general path spawns one process per request in
    # batch order; a request with a non-zero issue delay yields one timeout
    # before consulting the MDS. Hence arrival *ties* at t0 resolve with all
    # zero-delay requests (bootstrap hop only) ahead of all delayed ones
    # (timeout hop), each group in batch order — exactly the seeding below.
    issue = batch.issue_times
    if issue is None:
        arrival_times = np.full(n, t0, dtype=np.float64)
        heap = [(t0, i, _ARRIVE, i) for i in range(n)]
        arrival_order = range(n)
    else:
        arrival_times = t0 + issue
        immediate = np.flatnonzero(issue == 0.0)
        delayed = np.flatnonzero(issue != 0.0)
        heap = [(t0, seq, _ARRIVE, int(i)) for seq, i in enumerate(immediate)]
        base = len(heap)
        delayed_times = arrival_times[delayed].tolist()
        heap.extend(
            (delayed_times[seq], base + seq, _ARRIVE, int(i)) for seq, i in enumerate(delayed)
        )
        heapq.heapify(heap)
        # MDS service is FIFO with one uniform service time per batch, so
        # requests *exit* the MDS — and first-touch their extents — in
        # arrival order: zero-delay requests in batch order, then delayed
        # ones by (arrival time, batch order).
        arrival_order = np.concatenate(
            (immediate, delayed[np.argsort(arrival_times[delayed], kind="stable")])
        ).tolist()

    # Materialize sub-request jobs in arrival order so extent first-touch
    # allocation (physical base assignment) matches the general path.
    states: dict[int, _ServerReplay] = {}
    servers = pfs.servers
    extent_base = pfs._extent_base
    extent_ns = f"{handle.name}#g{handle.layout_generation}"
    jobs_by_request: list[list | None] = [None] * n
    n_subrequests = 0
    for i in arrival_order:
        is_write = not is_read_col[i]
        op = write_op if is_write else read_op
        jobs = []
        for segment, subs in presplits[i]:
            region_id = segment.region_id
            for sub in subs:
                sid = sub.server_id
                ss = states.get(sid)
                if ss is None:
                    ss = states[sid] = _ServerReplay(servers[sid])
                base = extent_base(extent_ns, region_id, sid)
                # job = (server state, is_write, op, physical offset, size,
                #        batch index)
                jobs.append((ss, is_write, op, base + sub.offset, sub.size, i))
        jobs_by_request[i] = jobs
        n_subrequests += len(jobs)

    remaining = [len(jobs) for jobs in jobs_by_request]
    completion = arrival_times.copy()

    # Shadow MDS service state (same Resource semantics as the servers').
    m_in_use = 0
    m_queue: deque = deque()
    m_since = 0.0
    m_deltas: list[float] = []
    m_granted = 0

    seq = len(heap)
    push = heapq.heappush
    pop = heapq.heappop

    while heap:
        t, _, kind, payload = pop(heap)
        if kind == _NIC_GRANT:
            # The waiter resumes: compute the transfer and schedule its end.
            push(heap, (t + payload[0].transfer_time(payload[4]), seq, _NIC_DONE, payload))
            seq += 1
        elif kind == _DISK_GRANT:
            # Resume hop: the device RNG advances here, matching the order
            # the general path's generator would consume it.
            push(
                heap,
                (t + payload[0].service_time(payload[2], payload[3], payload[4]), seq, _DISK_DONE, payload),
            )
            seq += 1
        elif kind == _NIC_DONE:
            ss = payload[0]
            ss.nic_in_use -= 1
            if ss.nic_in_use == 0:
                ss.nic_deltas.append(t - ss.nic_since)
            if ss.nic_queue:
                waiter = ss.nic_queue.popleft()
                if ss.nic_in_use == 0:
                    ss.nic_since = t
                ss.nic_in_use += 1
                ss.nic_granted += 1
                push(heap, (t, seq, _NIC_GRANT, waiter))
                seq += 1
            if payload[1]:  # write: disk stage next
                if ss.disk_in_use or ss.disk_queue:
                    ss.disk_queue.append(payload)
                else:
                    ss.disk_in_use = 1
                    ss.disk_granted += 1
                    ss.disk_since = t
                    push(heap, (t, seq, _DISK_GRANT, payload))
                    seq += 1
            else:  # read: payload delivered, sub-request complete
                ss.bytes_served += payload[4]
                ss.subrequests += 1
                i = payload[5]
                remaining[i] -= 1
                if not remaining[i]:
                    completion[i] = t
        elif kind == _DISK_DONE:
            ss = payload[0]
            ss.disk_in_use = 0
            ss.disk_deltas.append(t - ss.disk_since)
            if ss.disk_queue:
                waiter = ss.disk_queue.popleft()
                ss.disk_since = t
                ss.disk_in_use = 1
                ss.disk_granted += 1
                push(heap, (t, seq, _DISK_GRANT, waiter))
                seq += 1
            if payload[1]:  # write: persisted, sub-request complete
                ss.bytes_served += payload[4]
                ss.subrequests += 1
                i = payload[5]
                remaining[i] -= 1
                if not remaining[i]:
                    completion[i] = t
            else:  # read: NIC stage next
                if ss.nic_in_use < ss.nic_cap and not ss.nic_queue:
                    if ss.nic_in_use == 0:
                        ss.nic_since = t
                    ss.nic_in_use += 1
                    ss.nic_granted += 1
                    push(heap, (t, seq, _NIC_GRANT, payload))
                    seq += 1
                else:
                    ss.nic_queue.append(payload)
        elif kind == _SPAWN:
            ss = payload[0]
            if payload[1]:  # write: NIC first (client -> server)
                if ss.nic_in_use < ss.nic_cap and not ss.nic_queue:
                    if ss.nic_in_use == 0:
                        ss.nic_since = t
                    ss.nic_in_use += 1
                    ss.nic_granted += 1
                    push(heap, (t, seq, _NIC_GRANT, payload))
                    seq += 1
                else:
                    ss.nic_queue.append(payload)
            else:  # read: disk first
                if ss.disk_in_use or ss.disk_queue:
                    ss.disk_queue.append(payload)
                else:
                    ss.disk_in_use = 1
                    ss.disk_granted += 1
                    ss.disk_since = t
                    push(heap, (t, seq, _DISK_GRANT, payload))
                    seq += 1
        elif kind == _MDS_GRANT:
            push(heap, (t + lookup, seq, _MDS_EXIT, payload))
            seq += 1
        elif kind == _MDS_EXIT:
            m_in_use -= 1
            if m_in_use == 0:
                m_deltas.append(t - m_since)
            if m_queue:
                nxt = m_queue.popleft()
                if m_in_use == 0:
                    m_since = t
                m_in_use += 1
                m_granted += 1
                push(heap, (t, seq, _MDS_GRANT, nxt))
                seq += 1
            jobs = jobs_by_request[payload]
            if jobs:
                for job in jobs:
                    push(heap, (t, seq, _SPAWN, job))
                    seq += 1
            else:
                completion[payload] = t
        else:  # _ARRIVE
            if mds_enabled:
                if m_in_use < mds_cap and not m_queue:
                    if m_in_use == 0:
                        m_since = t
                    m_in_use += 1
                    m_granted += 1
                    push(heap, (t, seq, _MDS_GRANT, payload))
                    seq += 1
                else:
                    m_queue.append(payload)
            else:  # zero-cost consult returns inline; spawn subs now
                jobs = jobs_by_request[payload]
                if jobs:
                    for job in jobs:
                        push(heap, (t, seq, _SPAWN, job))
                        seq += 1
                else:
                    completion[payload] = t

    # Fold the shadow state back into the live components. Busy-time deltas
    # apply per resource in interval-closure order — float summation order
    # matches the general path's monitor arithmetic.
    for ss in states.values():
        server = ss.server
        nic_monitor = server.nic.monitor
        for delta in ss.nic_deltas:
            nic_monitor.busy_time += delta
        server.nic.granted_count += ss.nic_granted
        disk_monitor = server.disk.monitor
        for delta in ss.disk_deltas:
            disk_monitor.busy_time += delta
        server.disk.granted_count += ss.disk_granted
        server.bytes_served += ss.bytes_served
        server.subrequests_served += ss.subrequests
    mds.lookup_count += n
    if service is not None and m_deltas:
        service_monitor = service.monitor
        for delta in m_deltas:
            service_monitor.busy_time += delta
    if service is not None:
        service.granted_count += m_granted

    if n:
        read_bytes = int(batch.sizes[is_read_col].sum())
        handle.bytes_read += read_bytes
        handle.bytes_written += batch.total_bytes - read_bytes
        t_end = float(completion.max())
    else:
        t_end = t0
    return completion - arrival_times, t_end, n_subrequests
