"""Columnar request batches: the struct-of-arrays shape of a replay.

Large-scale replays move millions of requests through the simulated PFS;
materializing each one as a Python tuple (and later a generator process)
dominates wall-clock long before the DES arithmetic does. A
:class:`RequestBatch` keeps the whole batch as four parallel numpy arrays —
``offsets``/``sizes`` (int64), ``is_read`` (bool), and optional per-request
``issue_times`` (float64 seconds, relative to submission) — so workload
generators emit columns natively, the striping decomposition runs as one
vectorized :func:`repro.pfs.mapping.decompose_batch` pass, and
:meth:`repro.pfs.filesystem.PFSFile.request_batch` can drive the batched
execution fast path without per-request object churn.

Batches are value objects: treat the arrays as immutable after
construction (they are shared, not copied, to keep million-request batches
cheap to pass around).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.devices.base import OpType

__all__ = ["RequestBatch"]


def _as_column(values, dtype, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=dtype)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    return array


@dataclass(eq=False)
class RequestBatch:
    """A struct-of-arrays batch of I/O requests against one file.

    Attributes:
        offsets: int64 byte offsets, one per request.
        sizes: int64 request sizes in bytes; every entry must be >= 0.
            A zero-size request moves no data — it is a pure metadata
            operation (an open/stat-class RST consult), the unit of the
            open-storm workloads.
        is_read: bool column; False entries are writes.
        issue_times: optional float64 column of per-request issue times in
            seconds **relative to the submission instant** (>= 0). ``None``
            means every request is issued at the submission instant — the
            historical ``request_many`` behaviour.
    """

    offsets: np.ndarray
    sizes: np.ndarray
    is_read: np.ndarray
    issue_times: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.offsets = _as_column(self.offsets, np.int64, "offsets")
        self.sizes = _as_column(self.sizes, np.int64, "sizes")
        self.is_read = _as_column(self.is_read, bool, "is_read")
        n = self.offsets.shape[0]
        if self.sizes.shape[0] != n or self.is_read.shape[0] != n:
            raise ValueError(
                f"column lengths differ: offsets={n}, sizes={self.sizes.shape[0]}, "
                f"is_read={self.is_read.shape[0]}"
            )
        if n and self.offsets.min() < 0:
            raise ValueError("offsets must be >= 0")
        if n and self.sizes.min() < 0:
            raise ValueError("sizes must be >= 0")
        if self.issue_times is not None:
            self.issue_times = _as_column(self.issue_times, np.float64, "issue_times")
            if self.issue_times.shape[0] != n:
                raise ValueError(
                    f"issue_times has {self.issue_times.shape[0]} entries, expected {n}"
                )
            if n and not np.isfinite(self.issue_times).all():
                raise ValueError("issue_times must be finite")
            if n and self.issue_times.min() < 0:
                raise ValueError("issue_times must be >= 0 (relative to submission)")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_requests(
        cls,
        requests: Sequence[tuple[int, int]],
        op: OpType | str,
        issue_times: Sequence[float] | np.ndarray | None = None,
    ) -> "RequestBatch":
        """Build a single-op batch from ``(offset, size)`` pairs."""
        op = OpType.parse(op)
        n = len(requests)
        offsets = np.fromiter((o for o, _ in requests), dtype=np.int64, count=n)
        sizes = np.fromiter((s for _, s in requests), dtype=np.int64, count=n)
        return cls(
            offsets=offsets,
            sizes=sizes,
            is_read=np.full(n, op is OpType.READ, dtype=bool),
            issue_times=None if issue_times is None else np.asarray(issue_times, np.float64),
        )

    @classmethod
    def from_trace(cls, records, issue_times: bool = False) -> "RequestBatch":
        """Build a batch from IOSIG-style trace records (offset/size/op[/timestamp]).

        ``issue_times=True`` additionally captures each record's
        ``timestamp`` rebased to the earliest one, preserving the trace's
        temporal spacing on replay.
        """
        records = list(records)
        n = len(records)
        offsets = np.fromiter((r.offset for r in records), dtype=np.int64, count=n)
        sizes = np.fromiter((r.size for r in records), dtype=np.int64, count=n)
        is_read = np.fromiter(
            (OpType.parse(r.op) is OpType.READ for r in records), dtype=bool, count=n
        )
        times = None
        if issue_times and n:
            stamps = np.fromiter((r.timestamp for r in records), dtype=np.float64, count=n)
            times = stamps - stamps.min()
        return cls(offsets=offsets, sizes=sizes, is_read=is_read, issue_times=times)

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return self.offsets.shape[0]

    @property
    def n_requests(self) -> int:
        return self.offsets.shape[0]

    @property
    def total_bytes(self) -> int:
        """Summed request sizes."""
        return int(self.sizes.sum()) if len(self) else 0

    @property
    def single_op(self) -> OpType | None:
        """The batch's operation when uniform, else None."""
        if not len(self):
            return None
        if self.is_read.all():
            return OpType.READ
        if not self.is_read.any():
            return OpType.WRITE
        return None

    def op_at(self, index: int) -> OpType:
        """Operation of one request."""
        return OpType.READ if self.is_read[index] else OpType.WRITE

    def requests(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(offset, size)`` pairs (scalar view, for tests/fallbacks)."""
        for offset, size in zip(self.offsets.tolist(), self.sizes.tolist()):
            yield offset, size

    def iter_chunks(self, chunk_size: int) -> Iterator["RequestBatch"]:
        """Split into consecutive sub-batches of at most ``chunk_size`` requests.

        Chunks are zero-copy views (numpy slices) sharing this batch's
        columns, in request order; the last chunk may be shorter. Replaying
        the chunks back-to-back models a pipelined submission where each
        window is issued once the previous one drains — the memory-bounded
        way to push 100M-request replays through
        :meth:`repro.pfs.filesystem.PFSFile.request_batch`.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, len(self), chunk_size):
            yield self[start : start + chunk_size]

    def __getitem__(self, key) -> "RequestBatch":
        """Slice/fancy-index into a sub-batch (columns stay aligned)."""
        if isinstance(key, int):
            key = slice(key, key + 1)
        return RequestBatch(
            offsets=self.offsets[key],
            sizes=self.sizes[key],
            is_read=self.is_read[key],
            issue_times=None if self.issue_times is None else self.issue_times[key],
        )

    def __repr__(self) -> str:
        timed = "timed" if self.issue_times is not None else "untimed"
        return (
            f"RequestBatch(n={len(self)}, bytes={self.total_bytes}, "
            f"op={self.single_op.value if self.single_op else 'mixed'}, {timed})"
        )
