"""Crash-consistent metadata: a write-ahead journal for the MDS namespace.

The MDS namespace — file → layout, layout generations, in-flight migration
state — was bare in-memory dicts; a crash mid-``relayout`` or mid-migration
could strand it between generations. This module gives every MDS mutation a
write-ahead journal record, and :meth:`MetadataServer.recover
<repro.pfs.metadata.MetadataServer.recover>` rebuilds the namespace from
the journal bytes alone.

Record framing (DESIGN.md §11)::

    +----+-------------+-----------+------------------+
    | RJ | len(payload)| crc32     | payload (JSON)   |
    | 2B | u32 BE      | u32 BE    | len bytes, utf-8 |
    +----+-------------+-----------+------------------+

The payload is canonical JSON (sorted keys) with an ``op`` field plus
op-specific fields. A record *applies* if and only if it is completely and
verifiably present: :func:`MetadataJournal.decode` stops at the first bad
magic, short header, short payload, or CRC mismatch and discards the torn
tail. Because every logical mutation is exactly one record — the
migration generation-swap is two records, but only ``migration_commit``
mutates — recovery from any byte prefix yields exactly the pre- or
post-mutation namespace, never a state in between.

Journaling is opt-in (:meth:`MetadataServer.enable_journal`); with it off,
nothing in the data or metadata path changes.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

from repro.pfs.layout import HybridFixedLayout, LayoutPolicy, RegionLevelLayout

#: Record magic: the two bytes every frame starts with.
MAGIC = b"RJ"

_HEADER = struct.Struct(">2sII")  # magic, payload length, payload crc32

#: Upper bound on one record's payload — anything larger in the header is
#: treated as corruption rather than an attempt to allocate gigabytes.
MAX_PAYLOAD = 16 * 1024 * 1024


def layout_to_spec(layout: LayoutPolicy) -> dict:
    """JSON-serializable description of a layout, for journal records.

    Fixed-family layouts (including :class:`RandomLayout`, which reduces to
    its drawn stripe pair) serialize their striping config and replica
    count; region-level layouts serialize the full RST plus the per-region
    replica map. Inverse: :func:`layout_from_spec`.
    """
    if isinstance(layout, RegionLevelLayout):
        return {
            "kind": "region",
            "rst": json.loads(layout.rst.to_json()),
            "replicas": {str(k): v for k, v in sorted(layout._replicas.items())},
        }
    if isinstance(layout, HybridFixedLayout):
        config = layout.config
        return {
            "kind": "fixed",
            "n_hservers": config.n_hservers,
            "n_sservers": config.n_sservers,
            "hstripe": config.hstripe,
            "sstripe": config.sstripe,
            "replicas": layout.replicas,
        }
    raise TypeError(f"cannot journal layout type {type(layout).__name__}")


def layout_from_spec(spec: dict) -> LayoutPolicy:
    """Rebuild a layout from :func:`layout_to_spec` output."""
    kind = spec.get("kind")
    if kind == "region":
        from repro.core.rst import RegionStripeTable

        rst = RegionStripeTable.from_json(json.dumps(spec["rst"]))
        replicas = {int(k): int(v) for k, v in spec.get("replicas", {}).items()}
        return RegionLevelLayout(rst, replicas=replicas or 1)
    if kind == "fixed":
        return HybridFixedLayout(
            spec["n_hservers"],
            spec["n_sservers"],
            spec["hstripe"],
            spec["sstripe"],
            replicas=int(spec.get("replicas", 1)),
        )
    raise ValueError(f"unknown layout spec kind: {kind!r}")


def canonical_spec(layout: LayoutPolicy) -> str:
    """Canonical string form of a layout (namespace-equality comparisons)."""
    return json.dumps(layout_to_spec(layout), sort_keys=True)


class MetadataJournal:
    """Append-only CRC-framed record log backing the MDS namespace.

    The "disk" is an in-memory byte buffer: crash simulation takes any
    prefix of :attr:`data` (byte-granular, so torn final records are
    expressible) and hands it to ``MetadataServer.recover``.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.appends = 0

    # -- write side --------------------------------------------------------

    def append(self, op: str, **fields) -> int:
        """Frame and append one record; returns the journal size after it."""
        payload = json.dumps({"op": op, **fields}, sort_keys=True).encode()
        self._buf += _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload))
        self._buf += payload
        self.appends += 1
        return len(self._buf)

    @property
    def data(self) -> bytes:
        """The journal bytes as 'on disk' right now."""
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def counters(self) -> dict[str, int]:
        """Write-side counters for metric export (``journal.<key>``)."""
        return {"appends": self.appends, "bytes": len(self._buf)}

    # -- read side ---------------------------------------------------------

    @staticmethod
    def decode(data: bytes) -> tuple[list[dict], int]:
        """Parse ``data`` into records, discarding any torn/corrupt tail.

        Returns ``(records, clean_bytes)`` where ``clean_bytes`` is how far
        the verifiable prefix reaches. Parsing stops — never raises — at
        the first frame whose magic, length, CRC, or JSON does not check
        out, so a crash can truncate (or scribble on) the tail arbitrarily.
        """
        records: list[dict] = []
        cursor = 0
        total = len(data)
        while cursor + _HEADER.size <= total:
            magic, length, crc = _HEADER.unpack_from(data, cursor)
            if magic != MAGIC or length > MAX_PAYLOAD:
                break
            start = cursor + _HEADER.size
            end = start + length
            if end > total:
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break
            try:
                record = json.loads(payload)
            except ValueError:
                break
            if not isinstance(record, dict) or "op" not in record:
                break
            records.append(record)
            cursor = end
        return records, cursor

    def records(self) -> list[dict]:
        """All records of the (necessarily clean) live journal."""
        records, clean = self.decode(self._buf)
        assert clean == len(self._buf), "live journal can never be torn"
        return records


@dataclass
class RecoveryReport:
    """What :meth:`MetadataServer.recover` found in the journal bytes."""

    bytes_total: int = 0
    bytes_replayed: int = 0
    records_applied: int = 0
    #: Files whose migrations had begun but not committed at the crash —
    #: rolled back to their pre-migration layout/generation.
    rolled_back: list[str] = field(default_factory=list)

    @property
    def torn_bytes(self) -> int:
        """Trailing bytes discarded as torn or corrupt."""
        return self.bytes_total - self.bytes_replayed
