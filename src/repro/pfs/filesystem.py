"""PFS facades: files, request fan-out, and testbed construction.

:class:`ParallelFileSystem` is the generic simulated PFS: an ordered server
list, a metadata server, a network model, and the request fan-out logic. A
:class:`PFSFile` created on it carries a :class:`LayoutPolicy`; its
``read``/``write`` methods return DES processes that complete when every
sub-request has been served — the client-perceived I/O time of the request,
exactly the quantity the cost model predicts.

:class:`HybridPFS` is the paper's testbed shape — M HDD servers (HServers)
followed by N SSD servers (SServers) — and what all two-class experiments
use. The multi-tier extension lives in :mod:`repro.pfs.tiered`.

Region-level layouts address each region as a separate physical file (R2F);
the filesystem gives every (file, region, server) extent its own physical
base so positional device models see disjoint areas.
"""

from __future__ import annotations

import bisect
import os
from collections.abc import Generator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.devices.base import OpType
from repro.devices.hdd import HDDModel
from repro.devices.ssd import SSDModel
from repro.network.link import NetworkModel
from repro.pfs.batch import RequestBatch
from repro.pfs.health import ServerHealth, ServerUnavailable
from repro.pfs.integrity import (
    DEFAULT_BLOCK_SIZE,
    ExtentChecksums,
    IntegrityAccounting,
    IntegrityError,
)
from repro.pfs.layout import LayoutPolicy
from repro.pfs.mds_cluster import MetadataUnavailable
from repro.pfs.metadata import MetadataServer
from repro.pfs.server import FileServer
from repro.simulate.engine import Event, Process, Simulator
from repro.util.rng import derive_rng
from repro.util.units import GiB


class PFSFile:
    """A logical file striped over the filesystem's servers."""

    def __init__(self, pfs: "ParallelFileSystem", name: str, layout: LayoutPolicy):
        self.pfs = pfs
        self.name = name
        self.layout = layout
        self.layout_generation = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Optional per-file retry policy; falls back to the filesystem's.
        self.retry = None
        #: Degraded-mode indirection: when set, striping-config server id
        #: ``k`` addresses physical server ``server_map[k]``. Used by
        #: :meth:`relayout` after permanent failures, where the layout is
        #: planned over the *surviving* server counts only.
        self.server_map: tuple[int, ...] | None = None
        #: Fail fast instead of failing over: requests hit their planned
        #: server or raise :class:`ServerUnavailable` — no rerouting, no
        #: retries. Migration shadow handles set this so a dead target
        #: aborts the pass rather than silently placing bytes elsewhere.
        self.failfast = False
        #: Straggler-aware read scheduling hook (see
        #: :class:`repro.serving.hedging.HedgeScheduler`). None keeps the
        #: replicated-read path on :meth:`_serve_repairing` unchanged; when
        #: set, replicated reads are reordered/hedged across copies.
        self.hedge = None
        #: Optional ``(flow, weight)`` fair-queueing tag propagated to every
        #: sub-request process, read by ``WFQResource`` disks. None (the
        #: default) leaves sub-request processes untagged.
        self.qos = None
        self._sync_replication()

    def _sync_replication(self) -> None:
        """Cache whether any region of the layout is replicated.

        One attribute load on the request path instead of a layout method
        call, and the hook that turns integrity on filesystem-wide the
        moment a replicated layout appears.
        """
        self._replicated = self.layout.max_replicas() > 1
        if self._replicated:
            self.pfs._enable_replication()

    def relayout(self, layout: LayoutPolicy, server_map: tuple[int, ...] | None = None) -> int:
        """Swap in a new layout (online re-layout; see :mod:`repro.online`).

        Subsequent requests stripe under the new layout; the generation
        counter namespaces the physical extents so old and new region files
        do not alias. Returns the new generation number. Moving existing
        data between the layouts is the migrator's job.

        ``server_map`` enables *degraded* layouts planned over fewer servers
        than the filesystem physically has (after permanent failures): the
        layout's config server id ``k`` is served by physical server
        ``server_map[k]``. :meth:`ServerHealth.surviving_server_ids` produces
        exactly this mapping for a layout planned over the surviving counts.
        """
        config = layout.config_at(0)
        if server_map is None:
            if tuple(config.class_counts) != tuple(self.pfs.class_counts):
                raise ValueError(
                    f"layout built for server classes {tuple(config.class_counts)} but "
                    f"filesystem has {tuple(self.pfs.class_counts)}"
                )
        else:
            server_map = tuple(int(s) for s in server_map)
            if len(server_map) != sum(config.class_counts):
                raise ValueError(
                    f"server_map has {len(server_map)} entries but layout uses "
                    f"{sum(config.class_counts)} servers"
                )
            for physical in server_map:
                if not (0 <= physical < self.pfs.n_servers):
                    raise ValueError(f"server_map entry {physical} out of range")
        self.layout = layout
        self.server_map = server_map
        self.layout_generation += 1
        self._sync_replication()
        # Keep the MDS namespace current (and journaled, when the journal
        # is on). Shadow handles are not registered and stay off the record.
        if self.name in self.pfs.mds:
            self.pfs.mds.record_relayout(self.name, layout, self.layout_generation)
        # The old-generation cache entry must never serve another request.
        if self.pfs.mds_cache is not None:
            self.pfs.mds_cache.invalidate(self.name)
        return self.layout_generation

    def read(self, offset: int, size: int) -> Process:
        """Start a read of ``[offset, offset+size)``; returns its process."""
        return self.request(OpType.READ, offset, size)

    def write(self, offset: int, size: int) -> Process:
        """Start a write of ``[offset, offset+size)``; returns its process."""
        return self.request(OpType.WRITE, offset, size)

    def request(self, op: OpType | str, offset: int, size: int) -> Process:
        """Start an I/O request; the process value is its elapsed seconds."""
        op = OpType.parse(op)
        return self.pfs.sim.process(
            self._request_proc(op, offset, size), name=f"{self.name}:{op.value}@{offset}"
        )

    def _presplit(self, requests: Sequence[tuple[int, int]]) -> list[list]:
        """Striping decomposition of many requests, one numpy pass per config.

        Returns one ``[(segment, subrequests), ...]`` list per request, the
        shape :meth:`_request_proc` accepts as ``presplit``. The result is a
        snapshot against the current layout — callers must not ``relayout``
        between decomposing and serving.
        """
        from repro.pfs.mapping import decompose_batch

        layout = self.layout
        # Group every (request, segment) piece by striping config so each
        # config's pieces decompose in one vectorized call.
        per_request_segments: list[list] = []
        groups: dict = {}  # config -> list of (request_idx, segment_idx, rel_offset, size)
        for idx, (offset, size) in enumerate(requests):
            segments = layout.segments(offset, size)
            per_request_segments.append(segments)
            for sidx, segment in enumerate(segments):
                groups.setdefault(segment.config, []).append(
                    (idx, sidx, segment.offset - segment.region_base, segment.size)
                )
        decomposed: dict[tuple[int, int], list] = {}
        for config, pieces in groups.items():
            batch = decompose_batch(
                config,
                np.array([rel for _, _, rel, _ in pieces], dtype=np.int64),
                np.array([sz for _, _, _, sz in pieces], dtype=np.int64),
            )
            for (idx, sidx, _, _), subs in zip(pieces, batch):
                decomposed[(idx, sidx)] = subs
        return [
            [(segment, decomposed[(idx, sidx)]) for sidx, segment in enumerate(segments)]
            for idx, segments in enumerate(per_request_segments)
        ]

    def _presplit_flat(self, batch: RequestBatch):
        """Striping decomposition of a batch as flat sub-request columns.

        Returns a :class:`repro.pfs.batch_exec.FlatPresplit` — no
        per-request Python lists at all; the layout's region map
        (:meth:`LayoutPolicy.segments_batch`) and the striping decomposition
        (:func:`repro.pfs.mapping.decompose_batch_flat`) both run as
        vectorized passes. The result is a snapshot against the current
        layout — callers must not ``relayout`` between decomposing and
        serving.
        """
        from repro.pfs.batch_exec import FlatPresplit
        from repro.pfs.mapping import decompose_batch_flat

        req, rel, seg_sizes, region, cfg_idx, configs = self.layout.segments_batch(
            batch.offsets, batch.sizes
        )
        if len(configs) <= 1:
            if configs:
                piece, server, sub_off, sub_size = decompose_batch_flat(
                    configs[0], rel, seg_sizes
                )
            else:
                piece = server = sub_off = sub_size = np.zeros(0, dtype=np.int64)
            return FlatPresplit(req[piece], server, sub_off, sub_size, region[piece])
        # Multiple striping configs: decompose each distinct config's pieces
        # in one vectorized call, then stitch the groups back into global
        # (request, segment) order. A stable sort by piece index keeps each
        # piece's server-ordered sub-requests intact.
        groups: dict[int, list[int]] = {}
        for k, config in enumerate(configs):
            groups.setdefault(id(config), []).append(k)
        piece_parts, server_parts, off_parts, size_parts = [], [], [], []
        for indices in groups.values():
            sel = np.flatnonzero(np.isin(cfg_idx, np.asarray(indices, dtype=np.int64)))
            piece, server, sub_off, sub_size = decompose_batch_flat(
                configs[indices[0]], rel[sel], seg_sizes[sel]
            )
            piece_parts.append(sel[piece])
            server_parts.append(server)
            off_parts.append(sub_off)
            size_parts.append(sub_size)
        piece = np.concatenate(piece_parts)
        order = np.argsort(piece, kind="stable")
        piece = piece[order]
        return FlatPresplit(
            req[piece],
            np.concatenate(server_parts)[order],
            np.concatenate(off_parts)[order],
            np.concatenate(size_parts)[order],
            region[piece],
        )

    def request_many(
        self,
        op: OpType | str,
        requests: list[tuple[int, int]],
        issue_times: Sequence[float] | np.ndarray | None = None,
    ) -> list[Process]:
        """Submit many ``(offset, size)`` requests at the current instant.

        Equivalent to ``[self.request(op, o, s) for o, s in requests]`` —
        same sub-requests, same process spawn order, same completion times —
        but the striping decomposition of every request runs as one batched
        numpy pass per striping config (:func:`repro.pfs.mapping.decompose_batch`)
        instead of per request. The decomposition is snapshotted against the
        layout at submission time, so callers must not ``relayout`` between
        submitting and completion of these requests.

        ``issue_times`` (seconds relative to now, one per request, >= 0)
        delays each request's metadata consult and service to its own issue
        instant instead of issuing everything simultaneously — the timing a
        trace replay with preserved think time needs.
        """
        op = OpType.parse(op)
        sim = self.pfs.sim
        if issue_times is not None and len(issue_times) != len(requests):
            raise ValueError(
                f"issue_times has {len(issue_times)} entries for {len(requests)} requests"
            )
        presplits = self._presplit(requests)
        procs = []
        for idx, (offset, size) in enumerate(requests):
            if issue_times is None:
                generator = self._request_proc(op, offset, size, presplit=presplits[idx])
            else:
                delay = float(issue_times[idx])
                if delay < 0:
                    raise ValueError(f"issue_times must be >= 0, got {delay}")
                generator = self._issue_after(delay, op, offset, size, presplits[idx])
            procs.append(sim.process(generator, name=f"{self.name}:{op.value}@{offset}"))
        return procs

    def request_batch(self, batch: RequestBatch, force_general: bool = False) -> Event:
        """Submit a columnar batch; returns an event firing at completion.

        The event's value is a float64 array of per-request elapsed seconds
        (issue to completion), in batch order. When the filesystem is
        quiescent and undisturbed — no tracer, no faults or retry policies,
        plain FIFO resources (see
        :func:`repro.pfs.batch_exec.fast_path_blocker`) — the batch is
        served by the arithmetic replay fast path, byte-identical to the
        general path but without per-request process machinery. Otherwise
        (or with ``force_general=True``, or ``REPRO_BATCH_FAST=0`` in the
        environment) it transparently spawns one process per request
        exactly like :meth:`request_many`.

        Typical use drains the whole batch: ``sim.run(handle.request_batch(b))``.
        """
        from repro.pfs.batch_exec import fast_path_blocker, replay_batch

        sim = self.pfs.sim
        stats = self.pfs.batch_stats
        n = len(batch)
        if force_general:
            reason = "forced"
        elif os.environ.get("REPRO_BATCH_FAST", "1") == "0":
            reason = "disabled"
        else:
            reason = fast_path_blocker(self, batch)
        done = sim.event()
        if reason is None:
            flat = self._presplit_flat(batch)
            elapsed, t_end, n_subrequests, used_columnar = replay_batch(self, batch, flat)
            sim.schedule_many([(done, elapsed, t_end)], absolute=True)
            stats["fast_batches"] += 1
            if used_columnar:
                stats["fast_columnar_batches"] += 1
            stats["fast_requests"] += n
            stats["fast_subrequests"] += n_subrequests
            return done
        presplits = self._presplit(list(zip(batch.offsets.tolist(), batch.sizes.tolist())))
        stats["general_batches"] += 1
        stats["general_requests"] += n
        fallbacks = self.pfs.batch_fallbacks
        fallbacks[reason] = fallbacks.get(reason, 0) + 1
        offsets = batch.offsets.tolist()
        sizes = batch.sizes.tolist()
        reads = batch.is_read.tolist()
        issue = None if batch.issue_times is None else batch.issue_times.tolist()
        procs = []
        for idx in range(n):
            op = OpType.READ if reads[idx] else OpType.WRITE
            if issue is None:
                generator = self._request_proc(
                    op, offsets[idx], sizes[idx], presplit=presplits[idx]
                )
            else:
                generator = self._issue_after(
                    issue[idx], op, offsets[idx], sizes[idx], presplits[idx]
                )
            procs.append(sim.process(generator, name=f"{self.name}:{op.value}@{offsets[idx]}"))

        def _finish(umbrella: Event) -> None:
            if umbrella._exception is not None:
                done.fail(umbrella._exception)
            else:
                done.succeed(np.asarray(umbrella._value, dtype=np.float64))

        sim.all_of(procs).add_callback(_finish)
        return done

    def _issue_after(
        self, delay: float, op: OpType, offset: int, size: int, presplit: list
    ) -> Generator:
        """Delay a request to its issue instant, then serve it in place.

        A zero delay adds no timeout event, so a zero-delay entry behaves
        exactly like a request submitted without issue times.
        """
        if delay:
            yield self.pfs.sim.timeout(delay)
        result = yield from self._request_proc(op, offset, size, presplit=presplit)
        return result

    def serve_inline(self, op: OpType | str, offset: int, size: int) -> Generator:
        """Serve the request inside the calling process (no extra Process).

        Middleware ranks use this so a rank's requests stay sequential
        without spawning a process per request.
        """
        yield from self._request_proc(OpType.parse(op), offset, size)

    def _request_proc(
        self, op: OpType, offset: int, size: int, presplit: list | None = None
    ) -> Generator:
        sim = self.pfs.sim
        started = sim.now
        # Metadata lookup (RST consult under HARL) sits on the critical path
        # and contends with other clients at the MDS — unless the client's
        # layout cache holds a current-generation entry.
        cache = self.pfs.mds_cache
        if cache is None:
            yield from self.pfs.mds.consult(self.layout, self.name)
        else:
            yield from cache.lookup(self)
        sub_procs = []
        extent_ns = f"{self.name}#g{self.layout_generation}"
        if presplit is None:
            presplit = [
                (segment, segment.config.decompose(segment.offset - segment.region_base, segment.size))
                for segment in self.layout.segments(offset, size)
            ]
        # Resilience hooks. All three stay inert (None) in fault-free runs,
        # so the fast path below is byte-identical to a build without them.
        health = self.pfs.health
        retry = self.retry if self.retry is not None else self.pfs.retry
        server_map = self.server_map
        routed = health.route_map is not None
        if self.failfast:
            # Dead targets raise from FileServer.serve at dispatch instead
            # of being routed around (migration shadows must not fail over).
            retry = None
            routed = False
        replicated = self._replicated
        hedge = self.hedge
        qos = self.qos
        overrides = self.pfs.replica_overrides
        quorum = self.pfs.write_quorum
        for segment, subs in presplit:
            copies = self.layout.replica_count(segment.region_id) if replicated else 1
            for sub in subs:
                server_id = sub.server_id if server_map is None else server_map[sub.server_id]
                # ``config_id`` keys the placement's logical identity for
                # rebuild overrides; it stays None while no override exists
                # so the historical (post-route) replica addressing below is
                # untouched in rebuild-off runs.
                config_id = None
                sub_ns = extent_ns
                if overrides:
                    config_id = server_id
                    override = overrides.get((extent_ns, segment.region_id, server_id, 0))
                    if override is not None:
                        server_id = override
                        sub_ns = f"{extent_ns}~r0~b{config_id}"
                if routed:
                    try:
                        server_id = health.route(server_id)
                    except ServerUnavailable:
                        health.exhausted += 1
                        raise
                server = self.pfs.servers[server_id]
                base = self.pfs._extent_base(sub_ns, segment.region_id, server_id)
                if copies > 1 and op is OpType.READ:
                    if hedge is not None:
                        generator = hedge.serve_read(
                            self,
                            server_id,
                            base + sub.offset,
                            sub.size,
                            extent_ns,
                            segment.region_id,
                            sub.offset,
                            copies,
                            retry,
                            config_id=config_id,
                        )
                    else:
                        generator = self._serve_repairing(
                            server_id,
                            base + sub.offset,
                            sub.size,
                            extent_ns,
                            segment.region_id,
                            sub.offset,
                            copies,
                            retry,
                            config_id=config_id,
                        )
                elif retry is None:
                    generator = server.serve(op, base + sub.offset, sub.size)
                else:
                    generator = self._serve_resilient(
                        op, server_id, base + sub.offset, sub.size, retry
                    )
                proc = sim.process(generator, name=f"{server.name}<-{self.name}")
                if qos is not None:
                    proc.qos = qos
                sub_procs.append(proc)
                if copies > 1 and op is OpType.WRITE:
                    # Synchronous mirroring: the request completes only once
                    # every copy is durable, so replication's write cost is
                    # paid where a real mirrored PFS pays it. With a write
                    # quorum of k, only the first k copies (primary included)
                    # gate the ack; trailing mirrors run asynchronously and a
                    # crash inside the window is the rebuild manager's to
                    # close, not the client's to observe.
                    acct = self.pfs.integrity
                    sync_copies = copies if quorum is None else min(quorum, copies)
                    for copy in range(1, copies):
                        if config_id is not None:
                            target, rns = self.pfs.replica_extent(
                                extent_ns, segment.region_id, config_id, copy
                            )
                        else:
                            target = self.pfs.replica_target(server_id, copy)
                            rns = f"{extent_ns}~r{copy}"
                        rserver = self.pfs.servers[target]
                        rbase = self.pfs._extent_base(rns, segment.region_id, target)
                        acct.mirrored_writes += 1
                        if copy >= sync_copies:
                            self.pfs.quorum_stats["trailing_mirrors"] += 1
                            tproc = sim.process(
                                self.pfs._trailing_mirror(rserver, rbase + sub.offset, sub.size),
                                name=f"{rserver.name}<-{self.name}~r{copy}!async",
                            )
                            if qos is not None:
                                tproc.qos = qos
                        else:
                            rproc = sim.process(
                                self.pfs._sync_mirror(rserver, rbase + sub.offset, sub.size),
                                name=f"{rserver.name}<-{self.name}~r{copy}",
                            )
                            if qos is not None:
                                rproc.qos = qos
                            sub_procs.append(rproc)
                    if copies > sync_copies:
                        self.pfs.quorum_stats["acks"] += 1
        if sub_procs:
            yield sim.all_of(sub_procs)
        if op is OpType.READ:
            self.bytes_read += size
        else:
            self.bytes_written += size
        return sim.now - started

    def _serve_resilient(
        self, op: OpType, server_id: int, offset: int, size: int, retry
    ) -> Generator:
        """One sub-request under a RetryPolicy: timeout, backoff, failover.

        Each attempt re-consults the health route map (the target may have
        died between attempts) and races the serve against a timeout. A
        timed-out serve is interrupted with :class:`ServerUnavailable` so
        the server-side stages release their queue slots. Backoff delays
        are deterministic: jitter derives from the policy seed and the
        sub-request's identity, never from wall-clock or global RNG state.
        """
        sim = self.pfs.sim
        health = self.pfs.health
        attempt = 1
        while True:
            try:
                target = health.route(server_id)
            except ServerUnavailable:
                health.exhausted += 1
                raise
            server = self.pfs.servers[target]
            serve = sim.process(
                server.serve(op, offset, size), name=f"{server.name}<-{self.name}"
            )
            if self.qos is not None:
                serve.qos = self.qos
            failure: ServerUnavailable | None = None
            try:
                if retry.timeout is not None:
                    guard = sim.timeout(retry.timeout)
                    index, _ = yield sim.any_of([serve, guard])
                    if index == 1 and not (serve.triggered and serve._exception is None):
                        health.timeouts += 1
                        failure = ServerUnavailable(
                            f"{server.name}: no response within {retry.timeout:g}s",
                            server=server.name,
                        )
                        serve.interrupt(failure)
                    else:
                        # The serve won the race: lazily cancel the guard so
                        # its dead heap entry is discarded at pop instead of
                        # dispatching a no-op callback sweep.
                        guard.cancel()
                else:
                    yield serve
            except ServerUnavailable as exc:
                failure = exc
            if failure is None:
                return
            if attempt >= retry.max_attempts:
                health.exhausted += 1
                raise ServerUnavailable(
                    f"{self.name}:{op.value}@{offset}: giving up on {failure.server or server.name}"
                    f" after {attempt} attempt(s)",
                    server=failure.server or server.name,
                ) from failure
            health.retries += 1
            delay = retry.delay(attempt, key=(self.name, op.value, offset, size))
            if delay > 0:
                yield sim.timeout(delay)
            attempt += 1

    def _serve_repairing(
        self,
        server_id: int,
        offset: int,
        size: int,
        extent_ns: str,
        region_id: int,
        sub_offset: int,
        copies: int,
        retry,
        config_id: int | None = None,
    ) -> Generator:
        """A replicated read: verify, and self-heal from a replica on mismatch.

        The primary read serves normally (including retry/failover when a
        policy is active). On checksum mismatch the client re-reads the next
        replica copy; the first clean copy repairs the poisoned primary with
        an ordinary write — contending for the disk and NIC like any client
        — before the read completes. If every copy is corrupted the original
        typed error propagates: never silent wrong bytes. ``config_id``
        (set only while rebuild overrides exist) keys replica resolution by
        the placement's logical identity instead of the post-route server.
        """
        pfs = self.pfs
        server = pfs.servers[server_id]
        try:
            if retry is None:
                yield from server.serve(OpType.READ, offset, size)
            else:
                yield from self._serve_resilient(OpType.READ, server_id, offset, size, retry)
            return
        except IntegrityError as exc:
            primary_error = exc
        acct = pfs.integrity
        # Resolve the detection eagerly: it stands as unrepairable unless a
        # clean copy heals it below — so a request aborted mid-repair (a
        # sibling sub-request failed the whole fan-out) still accounts for
        # every detection and the silent_corruptions invariant holds.
        acct.unrepairable += 1
        lookup_id = server_id if config_id is None else config_id
        for copy in range(1, copies):
            target, rns = pfs.replica_extent(extent_ns, region_id, lookup_id, copy)
            rbase = pfs._extent_base(rns, region_id, target)
            acct.replica_reads += 1
            try:
                yield from pfs.servers[target].serve(OpType.READ, rbase + sub_offset, size)
            except IntegrityError:
                # The copy's own detection resolves here: this path leaves it
                # poisoned (scrubber's job), so it counts as unrepairable.
                acct.unrepairable += 1
                continue
            yield from server.serve(OpType.WRITE, offset, size)
            acct.unrepairable -= 1
            acct.repaired += 1
            return
        raise primary_error


@dataclass(frozen=True)
class CacheStats:
    """Picklable client-side metadata-cache summary (``RunResult.cache``)."""

    hits: int
    misses: int
    coalesced: int
    invalidations: int
    dropped_fills: int
    #: Hits whose cached generation disagreed with the authoritative MDS
    #: generation at hit time — the stale-read audit. The chaos gate: zero,
    #: always.
    stale_hits: int
    #: Cluster-wide invalidation epoch at end of run (bumped on every
    #: mds-crash and journal-replayed failover).
    epoch: int

    @property
    def lookups(self) -> int:
        """Total layout lookups the clients issued through the cache."""
        return self.hits + self.misses + self.coalesced

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MetadataCache:
    """Client-side layout cache: generation-tagged entries with coalescing.

    Sits in front of ``mds.consult`` on the request hot path and turns
    O(requests) MDS trips into O(distinct files × generations):

    - **Hit**: the cache holds an entry for the file whose layout
      generation matches the handle's *and* whose fill epoch matches the
      current invalidation epoch — the consult is skipped entirely (zero
      simulated time, zero MDS load). Every hit is audited against the
      authoritative MDS generation (:attr:`stale_hits`); a stale
      generation must never serve a read.
    - **Miss**: the first client becomes the *leader* and performs the real
      (routed, queued, crash-survivable) ``mds.consult``; concurrent
      lookups of the same file *coalesce* — they wait on the leader's fill
      event instead of consulting, so an open storm costs one MDS trip.
    - **Invalidation**: ``relayout``/``migrate`` bump the handle generation
      (and drop the entry explicitly); ``mds-crash`` and journal-replayed
      failover bump the cluster-wide *epoch* via
      :meth:`~repro.pfs.mds_cluster.MetadataCluster.subscribe_invalidation`,
      which invalidates every entry at once **and** poisons in-flight
      fills: a fill admitted before the crash whose epoch no longer
      matches is dropped (:attr:`dropped_fills`), never written — the
      failover-race fix.

    Everything is driven by simulated event order only, so cached runs are
    bit-identical serial or under ``--jobs N``.
    """

    def __init__(self, pfs: "ParallelFileSystem"):
        self.pfs = pfs
        #: file name -> (layout generation, fill epoch) of the cached entry.
        self._entries: dict[str, tuple[int, int]] = {}
        #: file name -> fill event of the in-flight leader consult.
        self._inflight: dict[str, Event] = {}
        self._epoch = 0
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.invalidations = 0
        self.dropped_fills = 0
        self.stale_hits = 0
        subscribe = getattr(pfs.mds, "subscribe_invalidation", None)
        if subscribe is not None:
            subscribe(self.bump_epoch)

    def bump_epoch(self) -> None:
        """Cluster-wide invalidation: crash or failover happened.

        Every cached entry and every in-flight fill carries the epoch it
        was admitted under; bumping makes them all stale at once without
        touching the dict on the hot path.
        """
        self._epoch += 1
        self.invalidations += 1

    def invalidate(self, name: str) -> None:
        """Drop one file's entry (relayout/migration commit)."""
        self.invalidations += 1
        self._entries.pop(name, None)

    def is_valid(self, handle: "PFSFile") -> bool:
        """True iff a lookup of ``handle`` would hit right now."""
        entry = self._entries.get(handle.name)
        return (
            entry is not None
            and entry[0] == handle.layout_generation
            and entry[1] == self._epoch
        )

    def _audit(self, handle: "PFSFile") -> None:
        """Stale-read audit: compare the hit against the authoritative MDS.

        Pure bookkeeping — no simulated time, no RNG. Unregistered (shadow)
        handles and hits during a shard outage cannot be checked and are
        skipped; the epoch bump already invalidated everything a crash
        could have staled.
        """
        self.audit_many(handle, 1)

    def audit_many(self, handle: "PFSFile", count: int) -> None:
        """Stale-read audit of ``count`` hits at once (batched fast path)."""
        if count <= 0:
            return
        try:
            generation = self.pfs.mds.generation_of(handle.name)
        except (FileNotFoundError, MetadataUnavailable):
            return
        if generation != handle.layout_generation:
            self.stale_hits += count

    def fill(self, handle: "PFSFile") -> None:
        """Record a completed fill for ``handle`` at the current epoch.

        The batched fast path calls this in place of the leader's inline
        fill — the blocker guarantees no epoch bump can interleave with an
        atomic replay, so the drop branch cannot arise there.
        """
        self._entries[handle.name] = (handle.layout_generation, self._epoch)

    def lookup(self, handle: "PFSFile", op: str = "open") -> Generator:
        """DES generator replacing ``mds.consult`` on the request path."""
        name = handle.name
        while True:
            if self.is_valid(handle):
                self.hits += 1
                self._audit(handle)
                return
            pending = self._inflight.get(name)
            if pending is None:
                break
            self.coalesced += 1
            yield pending
            if self.is_valid(handle):
                # Filled by the leader we waited on; the wait was already
                # counted as coalesced.
                return
            # The fill was dropped (epoch bumped mid-flight) or the layout
            # generation moved on: revalidate from the top.
        self.misses += 1
        epoch = self._epoch
        fill = self.pfs.sim.event()
        self._inflight[name] = fill
        try:
            yield from self.pfs.mds.consult(handle.layout, name, op=op)
        finally:
            if self._inflight.get(name) is fill:
                del self._inflight[name]
            fill.succeed()
        if self._epoch == epoch:
            self._entries[name] = (handle.layout_generation, epoch)
        else:
            # A crash/failover invalidated the world while this consult was
            # in flight: its answer predates the journal replay and must
            # not repopulate the cache.
            self.dropped_fills += 1

    def counters(self) -> dict[str, int]:
        """Flat snapshot exported as ``mds.cache.*`` metrics."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "invalidations": self.invalidations,
            "dropped_fills": self.dropped_fills,
            "stale_hits": self.stale_hits,
            "epoch": self._epoch,
        }

    def stats(self) -> CacheStats:
        """Picklable end-of-run summary (``RunResult.cache``)."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            coalesced=self.coalesced,
            invalidations=self.invalidations,
            dropped_fills=self.dropped_fills,
            stale_hits=self.stale_hits,
            epoch=self._epoch,
        )


class ParallelFileSystem:
    """Generic simulated PFS: ordered servers + MDS + network + fan-out.

    Subclasses define :attr:`class_counts` — the number of servers in each
    performance class, in server order — which ``create_file`` checks
    against every layout so striping-config server ids always index
    :attr:`servers` correctly.
    """

    #: Physical spacing between region extents on one server, so positional
    #: device models see distinct disk areas per region file.
    EXTENT_SPACING: int = 4 * GiB

    def __init__(
        self,
        sim: Simulator,
        servers: list[FileServer],
        network: NetworkModel,
        mds: MetadataServer | None = None,
        mds_cache: bool = False,
    ):
        if not servers:
            raise ValueError("filesystem needs at least one server")
        self.sim = sim
        self.servers = list(servers)
        self.network = network
        self.mds = mds or MetadataServer()
        self.mds.attach(sim)
        #: Client-side layout cache (:class:`MetadataCache`); None (the
        #: default) keeps every consult on the MDS, byte-identical to
        #: builds without caching.
        self.mds_cache = MetadataCache(self) if mds_cache else None
        self._files: dict[str, PFSFile] = {}
        self._extent_bases: dict[tuple[str, int, int], int] = {}
        self._alloc_cursor: dict[int, int] = {}
        #: Per-server sorted free lists of released extent bases (filled by
        #: :meth:`free_extents`); reused lowest-first before the cursor grows.
        self._extent_free: dict[int, list[int]] = {}
        #: End-to-end integrity accounting; None until
        #: :meth:`enable_integrity` runs (corruption faults or replicated
        #: layouts turn it on), keeping integrity-off runs byte-identical.
        self.integrity: IntegrityAccounting | None = None
        self._replica_pools: dict[int, list[int]] = {}
        #: Alive/dead bookkeeping + failover routing (see repro.pfs.health).
        self.health = ServerHealth(self.class_counts)
        #: Filesystem-wide default RetryPolicy; None = no timeouts/retries.
        self.retry = None
        #: Batched-submission counters, exported as ``pfs.batch.*`` metrics
        #: once any batch has been submitted.
        self.batch_stats = {
            "fast_batches": 0,
            "fast_columnar_batches": 0,
            "fast_requests": 0,
            "fast_subrequests": 0,
            "general_batches": 0,
            "general_requests": 0,
        }
        #: Fallback reason -> count for batches that took the general path.
        self.batch_fallbacks: dict[str, int] = {}
        #: Replica-placement overrides installed by the rebuild manager:
        #: ``(extent_ns, region_id, config_server, copy) -> physical target``.
        #: Empty in rebuild-off runs, so the request path's only cost is one
        #: truthiness check (see :meth:`replica_extent`).
        self.replica_overrides: dict[tuple[str, int, int, int], int] = {}
        #: Attached :class:`repro.online.rebuild.RebuildManager`, or None.
        self.rebuild = None
        #: Quorum-acknowledged writes: ack a replicated write once this many
        #: copies are durable, mirroring the rest asynchronously. None (the
        #: default) keeps fully synchronous mirroring, byte-identical to
        #: builds without quorum support.
        self.write_quorum: int | None = None
        self.quorum_stats = {
            "acks": 0,
            "trailing_mirrors": 0,
            "window_failures": 0,
            "mirror_failures": 0,
        }
        #: Callbacks fired (in registration order) by :meth:`fail_server` /
        #: :meth:`restore_server` with the server id, after health flips.
        self._failure_hooks: list = []
        self._restore_hooks: list = []

    @property
    def class_counts(self) -> tuple[int, ...]:
        """Servers per performance class; default: one class of everything."""
        return (len(self.servers),)

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    def create_file(self, name: str, layout: LayoutPolicy) -> PFSFile:
        """Register and return a new file with ``layout``."""
        config = layout.config_at(0)
        if tuple(config.class_counts) != tuple(self.class_counts):
            raise ValueError(
                f"layout built for server classes {tuple(config.class_counts)} but "
                f"filesystem has {tuple(self.class_counts)}"
            )
        self.mds.register(name, layout)
        handle = PFSFile(self, name, layout)
        self._files[name] = handle
        return handle

    def open_file(self, name: str) -> PFSFile:
        """Return the handle of an existing file."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(f"no such file: {name!r}") from None

    def fail_server(self, server_id: int) -> bool:
        """Permanently crash server ``server_id`` at the current sim time.

        Marks it dead in :attr:`health` (rebuilding the failover route map),
        rejects new sub-requests at the server, and interrupts in-flight
        ones so their clients see :class:`ServerUnavailable` and can retry
        against survivors. Returns False if the server was already dead.
        Driven by :class:`repro.faults.injector.FaultInjector` or directly
        by tests.
        """
        if not self.health.mark_failed(server_id, self.sim.now):
            return False
        self.servers[server_id].mark_failed()
        for hook in self._failure_hooks:
            hook(server_id)
        return True

    def restore_server(self, server_id: int) -> bool:
        """A crashed server rejoins *empty* at the current sim time.

        Models a chassis swap: same identity and device class, no surviving
        data. The victim's extent table entries, allocation cursor, free
        list, and checksum tags are all dropped (nothing written before the
        crash is trusted), the server accepts sub-requests again, and the
        health layer routes to it immediately. Re-populating it is the
        rebuild manager's job, via the restore hooks. Returns False (a
        no-op) if the server was alive.
        """
        if not (0 <= server_id < self.n_servers):
            raise IndexError(f"server_id {server_id} out of range 0..{self.n_servers - 1}")
        if self.health.is_alive(server_id):
            return False
        stale = [key for key in self._extent_bases if key[2] == server_id]
        for key in stale:
            del self._extent_bases[key]
        self._alloc_cursor.pop(server_id, None)
        self._extent_free.pop(server_id, None)
        server = self.servers[server_id]
        server.mark_restored()
        if self.integrity is not None:
            server.checksums = ExtentChecksums(
                server.name, self.integrity.block_size, accounting=self.integrity
            )
        self.health.mark_restored(server_id)
        for hook in self._restore_hooks:
            hook(server_id)
        return True

    def _extent_base(self, file_name: str, region_id: int, server_id: int) -> int:
        """Physical base of a (file, region) extent on one server.

        New extents reuse the lowest freed base on the server before the
        allocation cursor advances, so abort/retry cycles (see
        :meth:`free_extents`) do not leak simulated capacity.
        """
        key = (file_name, region_id, server_id)
        base = self._extent_bases.get(key)
        if base is None:
            free = self._extent_free.get(server_id)
            if free:
                base = free.pop(0)
            else:
                base = self._alloc_cursor.get(server_id, 0)
                self._alloc_cursor[server_id] = base + self.EXTENT_SPACING
            self._extent_bases[key] = base
        return base

    def free_extents(self, namespace: str) -> int:
        """Release every extent of ``namespace`` (and its replica copies).

        ``namespace`` is the ``"{file}#g{generation}"`` extent namespace; the
        replica namespaces ``"{namespace}~r{copy}"`` are released with it.
        Freed bases go to per-server free lists for reuse, and any checksum
        tags inside the released windows are dropped so a future tenant of
        the space never inherits stale (possibly poisoned) tags. Returns the
        number of extents released. Used by the migrator to reclaim a
        partially written shadow generation after :class:`MigrationAborted`.
        """
        prefix = namespace + "~r"
        victims = [
            key
            for key in self._extent_bases
            if key[0] == namespace or key[0].startswith(prefix)
        ]
        for key in victims:
            base = self._extent_bases.pop(key)
            server_id = key[2]
            bisect.insort(self._extent_free.setdefault(server_id, []), base)
            checks = self.servers[server_id].checksums
            if checks is not None:
                checks.discard_range(base, self.EXTENT_SPACING)
        return len(victims)

    # -- integrity & replication ------------------------------------------

    def enable_integrity(self, block_size: int = DEFAULT_BLOCK_SIZE) -> IntegrityAccounting:
        """Turn on end-to-end checksumming: every server gets CRC tags.

        Idempotent; returns the filesystem-wide accounting block. Installed
        automatically by corruption fault schedules
        (:class:`repro.faults.injector.FaultInjector`) and by replicated
        layouts at file creation/relayout.
        """
        if self.integrity is None:
            self.integrity = IntegrityAccounting(block_size)
            for server in self.servers:
                server.checksums = ExtentChecksums(
                    server.name, block_size, accounting=self.integrity
                )
        return self.integrity

    def _enable_replication(self) -> None:
        """Validate and arm the filesystem for a replicated layout."""
        if self.n_servers < 2:
            raise ValueError("region replication needs at least 2 servers")
        self.enable_integrity()

    def replica_target(self, server_id: int, copy: int) -> int:
        """Server holding replica ``copy`` (>= 1) of data primary on ``server_id``.

        Replicas land on the *other* performance class (HDA-style: a region
        primary on HServers mirrors to SServers and vice versa), walking the
        class round-robin so consecutive primaries spread their copies. A
        single-class filesystem falls back to the other servers of the same
        class.
        """
        pool = self._replica_pools.get(server_id)
        if pool is None:
            lo = 0
            for count in self.class_counts:
                if lo <= server_id < lo + count:
                    break
                lo += count
            pool = [i for i in range(self.n_servers) if not (lo <= i < lo + count)]
            if not pool:
                pool = [i for i in range(self.n_servers) if i != server_id]
            if not pool:
                raise ValueError("replication needs at least 2 servers")
            self._replica_pools[server_id] = pool
        return pool[(server_id + copy - 1) % len(pool)]

    def replica_extent(
        self, extent_ns: str, region_id: int, server_id: int, copy: int
    ) -> tuple[int, str]:
        """Current physical ``(server, extent namespace)`` of one placement.

        A *placement* is copy ``copy`` of the stripe column that
        config-server ``server_id`` owns in ``region_id``. Natural homes —
        copy 0 on ``server_id`` under the plain namespace, copy >= 1 on
        :meth:`replica_target` under ``"{ns}~r{copy}"`` — resolve exactly as
        the historical request path did. A rebuild-installed override in
        :attr:`replica_overrides` redirects the placement to its rebuilt
        location under the uniform namespace ``"{ns}~r{copy}~b{server_id}"``
        (``~b`` = "born on"), which keeps rebuilt extents exclusive per
        placement — a rebuilt primary never aliases the target's own primary
        extent for the same region — and still matches the ``"~r"`` prefix
        :meth:`free_extents` releases.
        """
        if self.replica_overrides:
            target = self.replica_overrides.get((extent_ns, region_id, server_id, copy))
            if target is not None:
                return target, f"{extent_ns}~r{copy}~b{server_id}"
        if copy == 0:
            return server_id, extent_ns
        return self.replica_target(server_id, copy), f"{extent_ns}~r{copy}"

    def _trailing_mirror(self, server: FileServer, offset: int, size: int) -> Generator:
        """A quorum write's async mirror, running after the client ack.

        Absorbs its own failures — the engine re-raises unobserved process
        failures, and a crash inside the ack-to-durable window is exactly
        the exposure the rebuild manager (not the acked client) must close —
        so the failure is counted, never propagated.
        """
        try:
            yield from server.serve(OpType.WRITE, offset, size)
        except (ServerUnavailable, IntegrityError):
            self.quorum_stats["window_failures"] += 1

    def _sync_mirror(self, server: FileServer, offset: int, size: int) -> Generator:
        """A synchronous mirror write that survives a dead mirror target.

        The write itself must not fail — its primary copy is durable; the
        mirror copy is simply *missing*, i.e. reduced redundancy, which is
        the rebuild manager's to restore (from the primary's written runs)
        rather than the client's to observe. Counted so chaos runs can
        reconcile missing copies against rebuild volume. Fault-free runs
        never enter the except arm, so the wrapper adds no events and
        rebuild-off runs stay bit-identical.
        """
        try:
            yield from server.serve(OpType.WRITE, offset, size)
        except ServerUnavailable:
            self.quorum_stats["mirror_failures"] += 1

    # -- statistics -------------------------------------------------------

    def server_busy_times(self) -> dict[str, float]:
        """Disk busy seconds per server (the Figure 1(a) measurement)."""
        return {server.name: server.disk_busy_time for server in self.servers}

    def collect_metrics(self, registry, makespan: float | None = None) -> None:
        """Export per-server totals into an observability registry.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry` (duck
        typed so this layer stays import-independent of :mod:`repro.obs`).
        Records, per server: device busy seconds, NIC busy seconds, bytes
        served, sub-request count, and — when ``makespan`` is given —
        utilization (busy / makespan), plus file-level byte counters.
        """
        horizon = self.sim.now if makespan is None else makespan
        for server in self.servers:
            prefix = f"server.{server.name}"
            busy = server.disk_busy_time
            registry.gauge(f"{prefix}.busy_s").update_max(busy)
            registry.gauge(f"{prefix}.nic_busy_s").update_max(server.nic.monitor.snapshot())
            registry.counter(f"{prefix}.bytes_served").inc(server.bytes_served)
            registry.counter(f"{prefix}.subrequests").inc(server.subrequests_served)
            if horizon > 0:
                registry.gauge(f"{prefix}.utilization").update_max(busy / horizon)
        for handle in self._files.values():
            registry.counter("pfs.bytes_read").inc(handle.bytes_read)
            registry.counter("pfs.bytes_written").inc(handle.bytes_written)
        # Resilience counters appear only once something actually went
        # wrong, keeping fault-free metric exports byte-identical.
        if self.health.touched:
            for key, value in self.health.counters().items():
                registry.counter(f"faults.{key}").inc(value)
        # Batch-executor counters likewise appear only once a batch was
        # submitted, so non-batched runs export the same metric set as ever.
        if self.batch_stats["fast_batches"] or self.batch_stats["general_batches"]:
            for key, value in self.batch_stats.items():
                registry.counter(f"pfs.batch.{key}").inc(value)
            for reason, count in sorted(self.batch_fallbacks.items()):
                registry.counter(f"pfs.batch.fallback.{reason}").inc(count)
        # Integrity counters appear only once integrity is on and something
        # happened, so integrity-off exports keep the exact historical shape.
        if self.integrity is not None and self.integrity.touched:
            for key, value in self.integrity.counters().items():
                registry.counter(f"integrity.{key}").inc(value)
        # Rebuild/durability counters appear only when a rebuild manager is
        # attached; quorum counters only when quorum writes are enabled — so
        # rebuild-off, quorum-off runs export the exact historical set.
        if self.rebuild is not None:
            for key, value in self.rebuild.counters().items():
                registry.counter(f"rebuild.{key}").inc(value)
        if self.write_quorum is not None:
            for key, value in self.quorum_stats.items():
                registry.counter(f"pfs.quorum.{key}").inc(value)
        # Journal counters appear only when the MDS write-ahead log is on.
        journal = getattr(self.mds, "journal", None)
        if journal is not None:
            for key, value in journal.counters().items():
                registry.counter(f"journal.{key}").inc(value)
        # Sharded-MDS counters appear only when the metadata service is a
        # cluster (duck typed; legacy runs export the exact historical set).
        cluster_counters = getattr(self.mds, "cluster_counters", None)
        if cluster_counters is not None:
            for key, value in cluster_counters().items():
                registry.counter(f"mds.{key}").inc(value)
        # Client-cache counters appear only when the cache is enabled, so
        # cache-off runs export the exact historical metric set.
        if self.mds_cache is not None:
            for key, value in self.mds_cache.counters().items():
                registry.counter(f"mds.cache.{key}").inc(value)

    def reset_statistics(self) -> None:
        """Zero all per-server traffic statistics."""
        for server in self.servers:
            server.reset_statistics()


class HybridPFS(ParallelFileSystem):
    """The paper's testbed: M HServers (HDD) then N SServers (SSD)."""

    def __init__(
        self,
        sim: Simulator,
        hservers: list[FileServer],
        sservers: list[FileServer],
        network: NetworkModel,
        mds: MetadataServer | None = None,
        mds_cache: bool = False,
    ):
        if not hservers and not sservers:
            raise ValueError("filesystem needs at least one server")
        self.hservers = list(hservers)
        self.sservers = list(sservers)
        super().__init__(
            sim, self.hservers + self.sservers, network, mds=mds, mds_cache=mds_cache
        )

    @property
    def class_counts(self) -> tuple[int, ...]:
        return (len(self.hservers), len(self.sservers))

    @property
    def n_hservers(self) -> int:
        return len(self.hservers)

    @property
    def n_sservers(self) -> int:
        return len(self.sservers)

    @classmethod
    def build(
        cls,
        sim: Simulator,
        n_hservers: int,
        n_sservers: int,
        network: NetworkModel | None = None,
        seed: int | np.random.Generator | None = 0,
        hdd_kwargs: dict | None = None,
        ssd_kwargs: dict | None = None,
        nic_parallelism: int = 4,
        disk_scheduler: str = "fifo",
        mds: MetadataServer | None = None,
        mds_cache: bool = False,
    ) -> "HybridPFS":
        """Build the paper's testbed shape: M HDD servers + N SSD servers.

        Each server gets an independently seeded device so startup latencies
        are uncorrelated streams, as on real hardware. ``nic_parallelism``
        defaults to 4 concurrent flows per server NIC (full-duplex GigE with
        pipelined TCP streams), keeping the fabric off the critical path as
        the paper's cost model assumes.
        """
        if n_hservers < 0 or n_sservers < 0 or n_hservers + n_sservers == 0:
            raise ValueError("need n_hservers >= 0, n_sservers >= 0, and at least one server")
        network = network or NetworkModel()
        hdd_kwargs = dict(hdd_kwargs or {})
        ssd_kwargs = dict(ssd_kwargs or {})
        hservers = [
            FileServer(
                sim,
                HDDModel(seed=derive_rng(seed, "hserver", i), name=f"hserver{i}", **hdd_kwargs),
                network,
                name=f"hserver{i}",
                nic_parallelism=nic_parallelism,
                disk_scheduler=disk_scheduler,
            )
            for i in range(n_hservers)
        ]
        sservers = [
            FileServer(
                sim,
                SSDModel(seed=derive_rng(seed, "sserver", j), name=f"sserver{j}", **ssd_kwargs),
                network,
                name=f"sserver{j}",
                nic_parallelism=nic_parallelism,
                disk_scheduler=disk_scheduler,
            )
            for j in range(n_sservers)
        ]
        return cls(sim, hservers, sservers, network, mds=mds, mds_cache=mds_cache)
