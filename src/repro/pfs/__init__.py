"""Simulated hybrid parallel file system (the paper's OrangeFS testbed).

Layers:

- :mod:`repro.pfs.mapping` — the round-robin striping math: how a logical
  request decomposes into one contiguous sub-request per file server, and
  the critical parameters (s_m, s_n, m, n) the cost model needs. Exact
  closed forms, scalar and numpy-vectorized.
- :mod:`repro.pfs.layout` — layout policies: fixed-size stripes (the
  baseline), hybrid fixed (h, s) pairs, randomly chosen stripes, and the
  region-level layout driven by HARL's RST.
- :mod:`repro.pfs.server` / :mod:`repro.pfs.metadata` /
  :mod:`repro.pfs.filesystem` — the DES components: file servers wrapping
  storage devices with FIFO disk and NIC queues, a metadata server serving
  layout lookups, and the :class:`HybridPFS` facade clients talk to.
- :mod:`repro.pfs.integrity` / :mod:`repro.pfs.journal` — end-to-end data
  integrity (per-stripe-unit checksums, typed :class:`IntegrityError`) and
  the crash-consistent metadata write-ahead log (DESIGN.md §11).
"""

from repro.pfs.batch import RequestBatch
from repro.pfs.filesystem import HybridPFS, ParallelFileSystem, PFSFile
from repro.pfs.integrity import IntegrityError, IntegrityStats
from repro.pfs.journal import MetadataJournal, RecoveryReport
from repro.pfs.layout import (
    FixedLayout,
    HybridFixedLayout,
    LayoutPolicy,
    RandomLayout,
    RegionLevelLayout,
)
from repro.pfs.mapping import (
    CriticalParams,
    StripingConfig,
    SubRequest,
    critical_params,
    critical_params_vectorized,
    decompose,
)
from repro.pfs.metadata import MetadataServer
from repro.pfs.server import FileServer
from repro.pfs.tiered import (
    ClassStripe,
    MultiClassStripingConfig,
    TieredFixedLayout,
    TieredPFS,
    config_from_dict,
)

__all__ = [
    "ClassStripe",
    "CriticalParams",
    "FileServer",
    "FixedLayout",
    "HybridFixedLayout",
    "HybridPFS",
    "IntegrityError",
    "IntegrityStats",
    "LayoutPolicy",
    "MetadataJournal",
    "MetadataServer",
    "MultiClassStripingConfig",
    "PFSFile",
    "ParallelFileSystem",
    "RandomLayout",
    "RecoveryReport",
    "RegionLevelLayout",
    "RequestBatch",
    "StripingConfig",
    "SubRequest",
    "TieredFixedLayout",
    "TieredPFS",
    "config_from_dict",
    "critical_params",
    "critical_params_vectorized",
    "decompose",
]
