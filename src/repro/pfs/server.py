"""A file server: one storage device behind FIFO disk and NIC queues.

Service discipline per sub-request:

- **write**: the payload crosses the server NIC first (client → server), then
  the disk services it.
- **read**: the disk services it, then the payload crosses the NIC
  (server → client).

Both the NIC and the disk are capacity-1 FIFO resources, so concurrent
clients queue — this is what produces the load imbalance of Figure 1(a):
with identical stripes, HServers accumulate deep disk queues while SServers
drain instantly.

Failure semantics (see :mod:`repro.faults`): a server can be *crashed*
permanently via :meth:`FileServer.mark_failed`. New sub-requests then raise
:class:`~repro.pfs.health.ServerUnavailable` immediately; sub-requests in
flight at crash time are interrupted and fail with the same typed error.
The service generators are interrupt-safe: a cancellation delivered while
queued withdraws the pending resource request, and one delivered while
holding a slot releases it — no grant is ever leaked.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.devices.base import OpType, StorageDevice
from repro.network.link import NetworkModel
from repro.pfs.health import ServerUnavailable
from repro.pfs.integrity import IntegrityError
from repro.simulate.engine import Interrupt, Process, Simulator
from repro.simulate.resources import Resource, ScanResource, WFQResource


class FileServer:
    """A PFS data server in the DES.

    Args:
        sim: owning simulator.
        device: the storage medium (HDD or SSD model).
        network: interconnect model used for the NIC stage.
        name: label used in per-server statistics (Fig. 1(a) bars).
        nic_parallelism: concurrent flows the NIC sustains at full rate;
            1 models a fully serialized GigE port.
        disk_scheduler: ``"fifo"`` (default), ``"scan"`` — C-SCAN
            elevator ordering of queued disk operations, worthwhile with
            positional (seek-distance-dependent) device models — or
            ``"wfq"`` — weighted fair queueing over the serving layer's
            per-tenant ``qos`` tags.
    """

    def __init__(
        self,
        sim: Simulator,
        device: StorageDevice,
        network: NetworkModel,
        name: str = "server",
        nic_parallelism: int = 1,
        disk_scheduler: str = "fifo",
    ):
        self.sim = sim
        self.device = device
        self.network = network
        self.name = name
        if disk_scheduler == "fifo":
            self.disk: Resource = Resource(sim, capacity=1, name=f"{name}.disk")
        elif disk_scheduler == "scan":
            self.disk = ScanResource(sim, name=f"{name}.disk")
        elif disk_scheduler == "wfq":
            self.disk = WFQResource(sim, name=f"{name}.disk")
        else:
            raise ValueError(
                f"unknown disk_scheduler {disk_scheduler!r}; use 'fifo', 'scan', or 'wfq'"
            )
        self.nic = Resource(sim, capacity=nic_parallelism, name=f"{name}.nic")
        self.bytes_served = 0
        self.subrequests_served = 0
        # Fault-injection state. ``_active`` stays None until fault tracking
        # is enabled, so the fault-free serve path pays one attribute check.
        self._failed = False
        self._active: set[Process] | None = None
        #: Per-stripe-unit CRC tags (:mod:`repro.pfs.integrity`); None until
        #: the filesystem enables integrity, so checksum-off serves pay one
        #: attribute comparison.
        self.checksums = None

    # -- failure handling --------------------------------------------------

    @property
    def is_failed(self) -> bool:
        """True once the server was crashed permanently."""
        return self._failed

    def enable_fault_tracking(self) -> None:
        """Start tracking in-flight serve processes (for crash interruption).

        Called by the fault injector before the simulation starts; without
        it, :meth:`mark_failed` still rejects *new* sub-requests but cannot
        cancel those already in flight.
        """
        if self._active is None:
            self._active = set()

    def mark_failed(self) -> None:
        """Crash the server: reject new serves, interrupt in-flight ones.

        In-flight serve processes receive an :class:`Interrupt` whose cause
        is a :class:`ServerUnavailable`; the serve generator converts it so
        waiting clients observe the typed error, not a bare Interrupt.
        """
        if self._failed:
            return
        self._failed = True
        if self._active:
            for proc in list(self._active):
                proc.interrupt(ServerUnavailable(f"{self.name}: server crashed", server=self.name))

    def mark_restored(self) -> None:
        """Rejoin after a crash: accept new sub-requests again.

        The server comes back *empty* — the filesystem drops its extent
        table entries and resets its checksum tags before calling this, so
        nothing written before the crash is assumed to survive the rejoin.
        """
        self._failed = False

    def fast_batch_blocker(self) -> str | None:
        """Why this server disqualifies the batched fast path, or None.

        The arithmetic replay (:mod:`repro.pfs.batch_exec`) assumes plain
        idle FIFO resources: a crashed or fault-tracked server, a C-SCAN
        disk, or any held/busy/queued slot means the replay's shadow state
        would not match the live resources. Checksums do not block — the
        replay commits the same CRC bookkeeping from its flat job table
        (the filesystem-level blocker still excludes poisoned state).
        """
        if self._failed:
            return "failed-server"
        if self._active is not None:
            return "fault-tracking"
        disk = self.disk
        if type(disk) is not Resource:
            return "disk-scheduler"
        if disk._held or disk._in_use or disk._queue:
            return "disk-busy"
        nic = self.nic
        if type(nic) is not Resource:
            return "custom-nic"
        if nic._held or nic._in_use or nic._queue:
            return "nic-busy"
        return None

    # -- service -----------------------------------------------------------

    def serve(self, op: OpType | str, offset: int, size: int) -> Generator:
        """Process generator serving one contiguous sub-request.

        Yields through the NIC and disk stages in op-appropriate order;
        completes when the payload has fully moved. Spawn it with
        ``sim.process(server.serve(...))``. Raises
        :class:`ServerUnavailable` if the server is (or becomes) crashed.
        """
        op = OpType.parse(op)
        if size <= 0:
            return
        if self._failed:
            raise ServerUnavailable(f"{self.name}: server is down", server=self.name)
        active = self._active
        proc = None
        if active is not None:
            proc = self.sim.active_process
            if proc is not None:
                active.add(proc)
        tracer = self.sim.tracer
        started = self.sim.now
        try:
            if op is OpType.WRITE:
                yield from self._nic_stage(op, offset, size)
                yield from self._disk_stage(op, offset, size)
            else:
                yield from self._disk_stage(op, offset, size)
                yield from self._nic_stage(op, offset, size)
        except Interrupt as exc:
            if isinstance(exc.cause, ServerUnavailable):
                raise exc.cause from None
            raise
        finally:
            if proc is not None:
                active.discard(proc)
        checks = self.checksums
        if checks is not None:
            if op is OpType.WRITE:
                checks.record_write(offset, size)
            else:
                mismatch = checks.first_mismatch(offset, size)
                if mismatch is not None:
                    # The payload crossed the wire (full service cost paid)
                    # but fails client-side verification: a typed error, not
                    # silent garbage — and not a completed serve.
                    raise IntegrityError(
                        f"{self.name}: checksum mismatch reading "
                        f"[{offset}, {offset + size}) "
                        f"(first bad stripe unit at {mismatch})",
                        server=self.name,
                        offset=offset,
                        size=size,
                    )
        self.bytes_served += size
        self.subrequests_served += 1
        if tracer is not None:
            tracer.on_subrequest(self, op, started, self.sim.now - started, size)

    def _disk_stage(self, op: OpType, offset: int, size: int) -> Generator:
        request = self.disk.request(key=offset)
        try:
            yield request
        except BaseException:
            # Interrupted while queued: withdraw the pending request; if it
            # was granted in the same instant, give the slot back instead.
            if not self.disk.cancel(request) and request.triggered:
                self.disk.release(request)
            raise
        try:
            tracer = self.sim.tracer
            if tracer is None:
                yield self.sim.timeout(self.device.service_time(op, offset, size))
            else:
                # Same device-model calls in the same order as the untraced
                # path, just split so startup and transfer trace separately.
                startup, transfer = self.device.service_breakdown(op, offset, size)
                start = self.sim.now
                tracer.record(start, startup, self.name, op.value, offset, size, "startup")
                tracer.record(
                    start + startup, transfer, self.name, op.value, offset, size, "transfer"
                )
                yield self.sim.timeout(startup + transfer)
        finally:
            self.disk.release(request)

    def _nic_stage(self, op: OpType, offset: int, size: int) -> Generator:
        request = self.nic.request()
        try:
            yield request
        except BaseException:
            if not self.nic.cancel(request) and request.triggered:
                self.nic.release(request)
            raise
        try:
            delay = self.network.transfer_time(size)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.record(self.sim.now, delay, self.name, op.value, offset, size, "network")
            yield self.sim.timeout(delay)
        finally:
            self.nic.release(request)

    # -- statistics -------------------------------------------------------

    @property
    def disk_busy_time(self) -> float:
        """Total seconds the disk was serving (the Fig. 1(a) metric)."""
        return self.disk.monitor.snapshot()

    def reset_statistics(self) -> None:
        """Zero traffic counters (busy-time monitors restart from now)."""
        self.bytes_served = 0
        self.subrequests_served = 0
        self.device.reset_counters()
        self.disk.monitor.busy_time = 0.0
        self.nic.monitor.busy_time = 0.0
