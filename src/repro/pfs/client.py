"""A thin PFS client for driving files outside the MPI middleware.

Examples and unit tests use :class:`PFSClient` to replay request lists
against a file — sequentially (one outstanding request, like a blocking
POSIX client) or concurrently (all in flight, an upper bound on available
parallelism) — and to collect per-request latencies.
"""

from __future__ import annotations

from collections.abc import Generator, Iterable
from dataclasses import dataclass

from repro.devices.base import OpType
from repro.pfs.filesystem import PFSFile
from repro.simulate.engine import Process, Simulator


@dataclass(frozen=True)
class ClientRequest:
    """One I/O the client will issue."""

    op: OpType
    offset: int
    size: int


@dataclass
class ClientStats:
    """Latency record of a replay."""

    latencies: list[float]

    @property
    def total_time(self) -> float:
        return sum(self.latencies)

    @property
    def max_latency(self) -> float:
        return max(self.latencies) if self.latencies else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_time / len(self.latencies) if self.latencies else 0.0


class PFSClient:
    """Replays request streams against one file.

    ``retry`` (a :class:`repro.faults.retry.RetryPolicy`) makes every file
    this client touches resilient: sub-requests time out, back off, and
    fail over per the policy instead of blocking forever on a dead server.
    """

    def __init__(self, sim: Simulator, name: str = "client", retry=None):
        self.sim = sim
        self.name = name
        self.retry = retry

    def _apply_retry(self, handle: PFSFile) -> None:
        if self.retry is not None and handle.retry is None:
            handle.retry = self.retry

    def replay(self, handle: PFSFile, requests: Iterable[ClientRequest]) -> Process:
        """Issue requests one at a time; process value is :class:`ClientStats`."""
        self._apply_retry(handle)
        return self.sim.process(self._replay_proc(handle, list(requests)), name=self.name)

    def _replay_proc(self, handle: PFSFile, requests: list[ClientRequest]) -> Generator:
        latencies: list[float] = []
        for request in requests:
            started = self.sim.now
            yield handle.request(request.op, request.offset, request.size)
            latencies.append(self.sim.now - started)
        return ClientStats(latencies=latencies)

    def replay_concurrent(self, handle: PFSFile, requests: Iterable[ClientRequest]) -> Process:
        """Issue all requests at once; value is the makespan in seconds."""
        self._apply_retry(handle)
        request_list = list(requests)

        def run() -> Generator:
            started = self.sim.now
            procs = [handle.request(r.op, r.offset, r.size) for r in request_list]
            if procs:
                yield self.sim.all_of(procs)
            return self.sim.now - started

        return self.sim.process(run(), name=f"{self.name}.concurrent")
