"""DES event tracing: spans, the tracer object, and run snapshots.

The tracer is attached to a :class:`~repro.simulate.engine.Simulator` as
``sim.tracer``; the DES kernel, :class:`~repro.simulate.resources.Resource`,
and :class:`~repro.pfs.server.FileServer` each check ``sim.tracer is None``
on their hot paths and call the duck-typed hooks below only when a tracer
is present — with tracing off, the only cost is that pointer comparison.

Span model (DESIGN.md §8): every sub-request a server serves decomposes
into at most three spans matching the paper's cost terms —

- ``network`` — the payload crossing the server NIC (the T_X term);
- ``startup`` — pre-transfer device latency, seek/rotation or FTL (T_S);
- ``transfer`` — the medium moving the payload (T_T).

Queue waits are *not* spans: they appear in the Chrome trace as gaps
between spans on a server track, and numerically as the per-resource wait
histograms in the metrics registry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.core.planner import PlanReport

#: Environment variable that turns tracing on for every run in the process
#: (inherited by pool workers). "0", "", "off", "false", "no" mean off.
TRACE_ENV = "REPRO_TRACE"

PHASE_NETWORK = "network"
PHASE_STARTUP = "startup"
PHASE_TRANSFER = "transfer"
#: Injected-fault windows (crash/hang/degrade/blip); not device work — they
#: render as their own track rows and never count toward server busy time.
PHASE_FAULT = "fault"
#: Scrubber verification passes over an extent (the device work inside the
#: window still traces as startup/transfer spans; this is the annotation).
PHASE_SCRUB = "scrub"
#: Self-healing writes repairing a detected corruption (read path or scrub).
PHASE_REPAIR = "repair"
PHASES = (PHASE_NETWORK, PHASE_STARTUP, PHASE_TRANSFER, PHASE_FAULT, PHASE_SCRUB, PHASE_REPAIR)


def tracing_enabled() -> bool:
    """True when the :data:`TRACE_ENV` environment switch requests tracing."""
    value = os.environ.get(TRACE_ENV, "").strip().lower()
    return value not in ("", "0", "off", "false", "no")


@dataclass(frozen=True, slots=True)
class Span:
    """One timed phase of one sub-request on one server (seconds)."""

    start: float
    duration: float
    server: str
    op: str
    offset: int
    size: int
    phase: str


class EventTracer:
    """Records spans and feeds the metrics registry during a simulation.

    Attach with ``sim.tracer = EventTracer()`` *before* ``sim.run``. The
    hook methods are called by the instrumented layers; user code normally
    only reads :attr:`spans` and :attr:`registry` afterwards (or lets
    :func:`collect_snapshot` package both).
    """

    __slots__ = ("spans", "events_dispatched", "registry", "_enqueued")

    def __init__(self, registry: MetricsRegistry | None = None):
        self.spans: list[Span] = []
        self.events_dispatched = 0
        self.registry = registry if registry is not None else MetricsRegistry()
        self._enqueued: dict[int, float] = {}

    def record(
        self,
        start: float,
        duration: float,
        server: str,
        op: str,
        offset: int,
        size: int,
        phase: str,
    ) -> None:
        """Append one span (timestamps in simulated seconds)."""
        self.spans.append(Span(start, duration, server, op, offset, size, phase))

    # -- hooks called by the instrumented layers ---------------------------

    def on_enqueue(self, resource, grant) -> None:
        """A request queued behind a busy resource (Resource.request)."""
        self._enqueued[id(grant)] = resource.sim.now
        self.registry.gauge(f"resource.{resource.name}.max_queue_depth").update_max(
            resource.queue_length
        )

    def on_grant(self, resource, grant) -> None:
        """A queued or immediate request got its slot (Resource._grant)."""
        enqueued_at = self._enqueued.pop(id(grant), None)
        wait = 0.0 if enqueued_at is None else resource.sim.now - enqueued_at
        self.registry.histogram(f"resource.{resource.name}.wait_s").observe(wait)

    def on_cancel(self, resource, grant) -> None:
        """A queued request was withdrawn (Resource.cancel); drop its mark."""
        self._enqueued.pop(id(grant), None)

    def on_subrequest(self, server, op, started: float, elapsed: float, size: int) -> None:
        """A server finished one sub-request end to end (FileServer.serve)."""
        self.registry.histogram(f"server.{server.name}.subreq_latency_s").observe(elapsed)

    def on_fault(self, kind: str, target: str, start: float, duration: float) -> None:
        """A fault window was injected (FaultInjector).

        ``duration`` may be 0 for instantaneous events (a permanent crash);
        the span still renders as a marker on the target's track. Counted
        per kind under ``faults.injected.<kind>``.
        """
        self.spans.append(Span(start, duration, target, kind, 0, 0, PHASE_FAULT))
        self.registry.counter(f"faults.injected.{kind}").inc()


def record_plan_report(registry: MetricsRegistry, report: "PlanReport") -> None:
    """Re-export a planner :class:`~repro.core.planner.PlanReport` as metrics.

    Surfaces the Algorithm 2 memoization traffic (stripe-cache hits/misses)
    and the region counts next to the run's I/O metrics so one summary
    answers both "where did simulated time go" and "what did the planner do".
    """
    registry.counter("planner.requests").inc(report.n_requests)
    registry.counter("planner.regions").inc(len(report.regions))
    registry.counter("planner.regions_after_merge").inc(report.n_regions_after_merge)
    registry.counter("planner.stripe_cache.hits").inc(report.cache_hits)
    registry.counter("planner.stripe_cache.misses").inc(report.cache_misses)
    registry.gauge("planner.stripe_cache.capacity").set(report.cache_capacity)
    lookups = report.cache_hits + report.cache_misses
    if lookups:
        registry.gauge("planner.stripe_cache.hit_rate").set(report.cache_hits / lookups)


@dataclass(frozen=True)
class ObsSnapshot:
    """Picklable observability payload of one run (spans + metrics)."""

    spans: tuple[Span, ...]
    metrics: dict
    makespan: float

    @property
    def n_spans(self) -> int:
        return len(self.spans)


def collect_snapshot(tracer: EventTracer, pfs, makespan: float) -> ObsSnapshot:
    """Package a finished run's tracer + filesystem state into a snapshot.

    Fills the registry with per-server totals (busy seconds, utilization,
    bytes, sub-request counts) read off the filesystem's monitors, then
    freezes everything into a picklable :class:`ObsSnapshot` so parallel
    workers can ship it back for merging.
    """
    registry = tracer.registry
    pfs.collect_metrics(registry, makespan=makespan)
    registry.counter("sim.events_dispatched").inc(tracer.events_dispatched)
    registry.gauge("sim.makespan_s").update_max(makespan)
    registry.counter("trace.spans").inc(len(tracer.spans))
    return ObsSnapshot(
        spans=tuple(tracer.spans), metrics=registry.snapshot(), makespan=makespan
    )


def merge_snapshots(snapshots: Iterable[ObsSnapshot | None]) -> ObsSnapshot | None:
    """Merge per-worker/per-run snapshots; None entries are skipped.

    Spans concatenate (each run keeps its own timeline starting at 0);
    metrics merge per :meth:`MetricsRegistry.merge`; the makespan is the
    maximum, matching the gauge convention.
    """
    present = [s for s in snapshots if s is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    spans: list[Span] = []
    for snapshot in present:
        spans.extend(snapshot.spans)
    return ObsSnapshot(
        spans=tuple(spans),
        metrics=MetricsRegistry.merge([s.metrics for s in present]),
        makespan=max(s.makespan for s in present),
    )
