"""Observability: DES event tracing, metrics, and trace exporters.

Zero-overhead-when-off instrumentation for the simulated cluster. Attach
an :class:`EventTracer` to a simulator (``sim.tracer = EventTracer()``) —
or set ``REPRO_TRACE=1`` to have the experiment harness do it for every
run — and each served sub-request is recorded as network/startup/transfer
spans (the paper's T_X/T_S/T_T decomposition) alongside a
:class:`MetricsRegistry` of per-server counters, gauges, and histograms.
Exporters render Chrome ``trace_event`` JSON (``chrome://tracing`` /
Perfetto), CSV span dumps, and text straggler summaries.
"""

from repro.obs.export import (
    busy_time_by_server,
    chrome_trace,
    headline,
    metrics_summary,
    spans_to_csv,
    straggler_summary,
    write_chrome_trace,
    write_spans_csv,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_bounds,
)
from repro.obs.tracer import (
    PHASE_FAULT,
    PHASE_NETWORK,
    PHASE_REPAIR,
    PHASE_SCRUB,
    PHASE_STARTUP,
    PHASE_TRANSFER,
    PHASES,
    TRACE_ENV,
    EventTracer,
    ObsSnapshot,
    Span,
    collect_snapshot,
    merge_snapshots,
    record_plan_report,
    tracing_enabled,
)

__all__ = [
    "busy_time_by_server",
    "chrome_trace",
    "headline",
    "metrics_summary",
    "spans_to_csv",
    "straggler_summary",
    "write_chrome_trace",
    "write_spans_csv",
    "DEFAULT_LATENCY_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_bounds",
    "PHASE_FAULT",
    "PHASE_NETWORK",
    "PHASE_REPAIR",
    "PHASE_SCRUB",
    "PHASE_STARTUP",
    "PHASE_TRANSFER",
    "PHASES",
    "TRACE_ENV",
    "EventTracer",
    "ObsSnapshot",
    "Span",
    "collect_snapshot",
    "merge_snapshots",
    "record_plan_report",
    "tracing_enabled",
]
