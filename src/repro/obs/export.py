"""Exporters: Chrome ``trace_event`` JSON, CSV span dumps, text summaries.

The Chrome format is the `trace_event` JSON-object form understood by
``chrome://tracing`` and Perfetto: a ``traceEvents`` list of complete
(``"ph": "X"``) events with microsecond timestamps, plus metadata events
naming the process and one thread per server. Server tracks therefore show
exactly the paper's per-server decomposition: network / startup / transfer
spans separated by queueing gaps.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable

from repro.obs.tracer import ObsSnapshot, Span
from repro.util.units import format_size

#: Stable field order of the CSV span dump.
CSV_FIELDS = ("start_s", "duration_s", "server", "op", "offset", "size", "phase")


def _span_list(source: ObsSnapshot | Iterable[Span]) -> list[Span]:
    if isinstance(source, ObsSnapshot):
        return list(source.spans)
    return list(source)


def busy_time_by_server(source: ObsSnapshot | Iterable[Span]) -> dict[str, float]:
    """Device busy seconds per server: sum of startup + transfer spans.

    The device behind each server is a capacity-1 resource, so its spans
    never overlap and their plain sum equals the utilization monitor's
    busy time exactly (the acceptance identity: Σ busy == makespan × util).
    Injected-fault windows (``phase == "fault"``) are annotations, not
    device work, and are excluded along with network spans.
    """
    busy: dict[str, float] = {}
    for span in _span_list(source):
        if span.phase in ("startup", "transfer"):
            busy[span.server] = busy.get(span.server, 0.0) + span.duration
    return busy


def chrome_trace(source: ObsSnapshot | Iterable[Span]) -> dict:
    """Build the Chrome ``trace_event`` JSON object for ``source``."""
    spans = _span_list(source)
    servers = sorted({span.server for span in spans})
    tids = {server: index for index, server in enumerate(servers)}
    events: list[dict] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name", "args": {"name": "repro-sim"}}
    ]
    for server, tid in tids.items():
        events.append(
            {"ph": "M", "pid": 0, "tid": tid, "name": "thread_name", "args": {"name": server}}
        )
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    for span in spans:
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": tids[span.server],
                "name": span.phase,
                "cat": span.op,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": {"offset": span.offset, "size": span.size},
            }
        )
    payload: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if isinstance(source, ObsSnapshot):
        payload["otherData"] = {"makespan_s": source.makespan, "n_spans": source.n_spans}
    return payload


def write_chrome_trace(path: str | Path, source: ObsSnapshot | Iterable[Span]) -> Path:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(source)) + "\n")
    return path


def spans_to_csv(source: ObsSnapshot | Iterable[Span]) -> str:
    """Render spans as a CSV document (header + one row per span)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_FIELDS)
    for span in _span_list(source):
        writer.writerow(
            [
                f"{span.start:.9f}",
                f"{span.duration:.9f}",
                span.server,
                span.op,
                span.offset,
                span.size,
                span.phase,
            ]
        )
    return buffer.getvalue()


def write_spans_csv(path: str | Path, source: ObsSnapshot | Iterable[Span]) -> Path:
    """Write the CSV span dump to ``path``; returns the path."""
    path = Path(path)
    path.write_text(spans_to_csv(source))
    return path


def straggler_summary(snapshot: ObsSnapshot, top: int = 8) -> str:
    """Text ranking of servers by busy time, flagging the straggler.

    ``T = max(...)`` over servers means the busiest server *is* the
    request's completion time; the ratio of the maximum to the mean busy
    time quantifies how far the layout is from the balanced optimum the
    paper's cost model targets.
    """
    metrics = snapshot.metrics
    rows = []
    for name, entry in metrics.items():
        prefix, _, field = name.rpartition(".")
        if field == "busy_s" and prefix.startswith("server."):
            server = prefix[len("server.") :]
            util = metrics.get(f"server.{server}.utilization", {}).get("value", 0.0)
            served = metrics.get(f"server.{server}.bytes_served", {}).get("value", 0)
            subreqs = metrics.get(f"server.{server}.subrequests", {}).get("value", 0)
            rows.append((entry["value"], server, util, served, subreqs))
    if not rows:
        return "no per-server metrics recorded"
    rows.sort(reverse=True)
    mean_busy = sum(row[0] for row in rows) / len(rows)
    max_busy = rows[0][0]
    lines = [f"top servers by busy time (makespan {snapshot.makespan:.4f}s):"]
    for index, (busy, server, util, served, subreqs) in enumerate(rows[:top]):
        flag = "  <- straggler" if index == 0 and len(rows) > 1 else ""
        lines.append(
            f"  {server:<12s} {busy:8.4f}s busy ({util:6.1%} util)  "
            f"{format_size(int(served)):>8s}  {int(subreqs)} subreqs{flag}"
        )
    if len(rows) > top:
        lines.append(f"  ... {len(rows) - top} more servers")
    ratio = max_busy / mean_busy if mean_busy > 0 else 0.0
    lines.append(f"straggler ratio (max/mean busy): {ratio:.2f}x")
    return "\n".join(lines)


def metrics_summary(snapshot: ObsSnapshot) -> str:
    """Full metrics table plus the straggler ranking."""
    from repro.obs.metrics import MetricsRegistry

    return "\n".join(
        [
            straggler_summary(snapshot),
            "",
            MetricsRegistry.render(snapshot.metrics),
        ]
    )


def headline(snapshot: ObsSnapshot) -> str:
    """One-line metrics digest for report sections."""
    busy = busy_time_by_server(snapshot)
    if not busy:
        return f"{snapshot.n_spans} spans, no device activity"
    straggler = max(busy, key=busy.get)  # type: ignore[arg-type]
    line = (
        f"{snapshot.n_spans} spans over {len(busy)} servers; "
        f"busiest {straggler} {busy[straggler]:.4f}s busy"
    )
    # A merged snapshot sums busy time across runs while keeping the max
    # makespan, so a utilization figure only makes sense for a single run.
    if 0 < snapshot.makespan and busy[straggler] <= snapshot.makespan:
        line += f" ({busy[straggler] / snapshot.makespan:.0%} of makespan)"
    return line
