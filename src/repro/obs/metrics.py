"""Counters, gauges, and histograms for simulation observability.

A :class:`MetricsRegistry` is a flat name → metric map filled by the DES
tracer and the post-run collectors (per-server busy time, queue depths,
bytes in/out, sub-request latency distributions, planner cache traffic).
Registries serialize to plain-dict *snapshots* so they cross process-pool
boundaries (``experiments.parallel`` workers) and merge deterministically:
counters add, gauges keep the maximum observed, histograms add per-bucket.

Metrics are an *observability* feature: nothing in the simulation reads
them back, so recording can never perturb results.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable


def exponential_bounds(start: float, count: int, factor: float = 2.0) -> tuple[float, ...]:
    """Geometric histogram bucket bounds: ``start * factor**i``."""
    if start <= 0 or count < 1 or factor <= 1:
        raise ValueError("need start > 0, count >= 1, factor > 1")
    return tuple(start * factor**i for i in range(count))


#: Default bucket upper bounds for latency histograms: 1 µs .. ~34 s.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = exponential_bounds(1e-6, 26, 2.0)

#: Finer-grained bounds for tail-latency (p99/p999) histograms: √2 spacing
#: keeps interpolated quantiles within ±19% of the true value, 1 µs .. ~45 s.
TAIL_LATENCY_BOUNDS: tuple[float, ...] = exponential_bounds(1e-6, 51, 2.0**0.5)


def _interpolate_quantile(
    bounds: tuple[float, ...],
    counts: list[int],
    count: int,
    vmin: float,
    vmax: float,
    q: float,
) -> float:
    """Shared quantile core for live histograms and snapshot dicts.

    q=0 and q=1 return the exact observed extremes; interior quantiles
    interpolate linearly within the covering bucket, with the bucket edges
    clamped to [vmin, vmax] (every observation lies in that range, so the
    clamp only tightens the estimate — it never moves it outside the data).
    """
    if not 0 <= q <= 1:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count == 0:
        return 0.0
    if q == 0:
        return vmin
    if q == 1:
        return vmax
    target = q * count
    seen = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count and seen + bucket_count >= target:
            low = bounds[index - 1] if index > 0 else 0.0
            high = bounds[index] if index < len(bounds) else vmax
            low = max(low, vmin)
            high = min(high, vmax)
            fraction = (target - seen) / bucket_count
            return low + fraction * (high - low)
        seen += bucket_count
    return vmax


def histogram_quantile(entry: dict, q: float) -> float:
    """Interpolated q-quantile from a histogram *snapshot* entry.

    Operates on the plain-dict form produced by
    :meth:`MetricsRegistry.snapshot`/:meth:`MetricsRegistry.merge`, so
    quantiles can be computed after results cross a process-pool boundary.
    """
    if entry.get("type") != "histogram":
        raise TypeError(f"not a histogram snapshot entry: {entry.get('type')!r}")
    return _interpolate_quantile(
        tuple(entry["bounds"]),
        entry["counts"],
        entry["count"],
        entry["min"],
        entry["max"],
        q,
    )


class Counter:
    """A monotonically increasing value (events, bytes, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (busy seconds, utilization, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def update_max(self, value: float) -> None:
        """Keep the largest value seen (high-water marks, e.g. queue depth)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with exact sum/count/min/max side-channels.

    ``bounds`` are bucket *upper* bounds; one implicit overflow bucket
    catches everything beyond the last bound. Quantiles interpolate within
    the covering bucket and are exact at q=0/q=1; :attr:`mean` is exact.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS):
        if list(bounds) != sorted(bounds) or len(bounds) < 1:
            raise ValueError("histogram bounds must be a non-empty sorted sequence")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile: exact at the edges (observed min/max),
        linear within the covering bucket elsewhere."""
        return _interpolate_quantile(
            self.bounds, self.counts, self.count, self.min, self.max, q
        )


class MetricsRegistry:
    """Flat get-or-create store of named metrics."""

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS
    ) -> Histogram:
        return self._get(name, Histogram, bounds)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict, picklable view of every metric (for pool workers)."""
        out: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            else:
                # Empty histograms carry ±inf min/max sentinels internally;
                # export 0.0 so the infinities never leak into CSV/JSON
                # exporters or merged snapshots.
                out[name] = {
                    "type": "histogram",
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "total": metric.total,
                    "count": metric.count,
                    "min": metric.min if metric.count else 0.0,
                    "max": metric.max if metric.count else 0.0,
                }
        return out

    @staticmethod
    def merge(snapshots: Iterable[dict]) -> dict:
        """Merge worker snapshots: counters add, gauges max, histograms add.

        Gauges keep the maximum because every per-run gauge here is a
        high-water mark (busy seconds, utilization, queue depth) and the
        merged view answers "how bad did it get anywhere".
        """
        merged: dict[str, dict] = {}
        for snapshot in snapshots:
            for name, entry in snapshot.items():
                current = merged.get(name)
                if current is None:
                    current = {
                        key: list(value) if isinstance(value, list) else value
                        for key, value in entry.items()
                    }
                    if entry["type"] == "histogram" and not entry["count"]:
                        current["min"] = 0.0
                        current["max"] = 0.0
                    merged[name] = current
                    continue
                if current["type"] != entry["type"]:
                    raise TypeError(f"metric {name!r} has conflicting types across snapshots")
                if entry["type"] == "counter":
                    current["value"] += entry["value"]
                elif entry["type"] == "gauge":
                    current["value"] = max(current["value"], entry["value"])
                else:
                    if current["bounds"] != list(entry["bounds"]):
                        raise ValueError(f"histogram {name!r} bucket bounds differ across snapshots")
                    # An empty side contributes no observations, so its
                    # placeholder min/max (0.0 from snapshot(), or ±inf from
                    # a legacy snapshot) must not poison the merged extremes.
                    if entry["count"]:
                        if current["count"]:
                            current["min"] = min(current["min"], entry["min"])
                            current["max"] = max(current["max"], entry["max"])
                        else:
                            current["min"] = entry["min"]
                            current["max"] = entry["max"]
                    current["counts"] = [
                        a + b for a, b in zip(current["counts"], entry["counts"])
                    ]
                    current["total"] += entry["total"]
                    current["count"] += entry["count"]
        return dict(sorted(merged.items()))

    @staticmethod
    def render(snapshot: dict) -> str:
        """Human-readable table of a snapshot (the ``trace`` CLI summary)."""
        lines = []
        for name, entry in sorted(snapshot.items()):
            if entry["type"] == "counter":
                lines.append(f"{name:<44s} {entry['value']}")
            elif entry["type"] == "gauge":
                lines.append(f"{name:<44s} {entry['value']:.6g}")
            else:
                count = entry["count"]
                mean = entry["total"] / count if count else 0.0
                low = entry["min"] if count else 0.0
                high = entry["max"] if count else 0.0
                lines.append(
                    f"{name:<44s} n={count} mean={mean:.3g}s "
                    f"min={low:.3g}s max={high:.3g}s"
                )
        return "\n".join(lines)
