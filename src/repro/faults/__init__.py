"""Declarative fault injection and failure handling for the simulation stack.

Three layers (see DESIGN.md §9):

- :mod:`repro.faults.schedule` — what goes wrong and when: typed fault
  specs, the ``--faults`` string grammar, seeded stochastic schedules;
- :mod:`repro.faults.injector` — applying a schedule to a live simulator +
  filesystem through DES processes, and summarizing the damage
  (:class:`FaultStats`);
- :mod:`repro.faults.corruption` — seed-deterministic silent-corruption
  events (detected by :mod:`repro.pfs.integrity` checksummed reads);
- :mod:`repro.faults.retry` — how clients survive it: timeouts, capped
  exponential backoff with deterministic jitter, failover via the health
  layer (:mod:`repro.pfs.health`).

Everything is seed-deterministic and wall-clock-free: the same (seed,
schedule, workload) triple produces bit-identical runs, serial or parallel.
"""

from repro.faults.corruption import corrupt_server
from repro.faults.injector import FaultInjector, FaultStats, inject
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    DataCorruption,
    FaultSchedule,
    FaultSpecError,
    MdsCrash,
    NetworkBlip,
    ServerCrash,
    ServerDegrade,
    ServerHang,
    ServerRestore,
    parse_faults,
)
from repro.pfs.health import ServerHealth, ServerUnavailable
from repro.pfs.mds_cluster import MetadataCluster, MetadataUnavailable, ShardHealth

__all__ = [
    "DataCorruption",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpecError",
    "FaultStats",
    "MdsCrash",
    "MetadataCluster",
    "MetadataUnavailable",
    "NetworkBlip",
    "RetryPolicy",
    "ServerCrash",
    "ServerDegrade",
    "ServerHang",
    "ServerHealth",
    "ServerRestore",
    "ServerUnavailable",
    "ShardHealth",
    "corrupt_server",
    "inject",
    "parse_faults",
]
