"""Applying :class:`DataCorruption` events: seed-deterministic poisoning.

A corruption event flips the stored CRC tags of a sample of the target
server's *written* stripe units (never-written space has no tags and
nothing to corrupt — exactly like real silent corruption, which damages
stored bytes). The sample is drawn from a :func:`repro.util.rng.derive_rng`
stream keyed by the run seed, the target server, and the event's firing
sequence number, so the same (seed, schedule) poisons the same units in
every replay, serial or under ``--jobs N``.

Poisoned units stay silent until a checksummed read covers them — then the
server raises :class:`~repro.pfs.integrity.IntegrityError` and the client
either repairs from a replica or propagates the typed error. See
:mod:`repro.pfs.integrity` and DESIGN.md §11.
"""

from __future__ import annotations

import numpy as np

from repro.pfs.integrity import ExtentChecksums


def corrupt_server(
    checksums: ExtentChecksums, rate: float, rng: np.random.Generator
) -> int:
    """Poison a ``rate`` fraction of the written, still-clean stripe units.

    Draws ``max(1, round(rate * candidates))`` distinct units (capped at the
    candidate count) without replacement and flips their stored tags.
    Already-poisoned units are excluded — re-poisoning would XOR a unit's
    tag back to clean. Returns the number of units poisoned; 0 when the
    server has no clean written units yet.
    """
    if not (0.0 < rate <= 1.0):
        raise ValueError(f"corruption rate must be in (0, 1], got {rate}")
    poisoned = set(checksums.poisoned_blocks())
    candidates = [b for b in checksums.written_blocks() if b not in poisoned]
    if not candidates:
        return 0
    count = min(len(candidates), max(1, round(rate * len(candidates))))
    picks = rng.choice(len(candidates), size=count, replace=False)
    for index in sorted(int(p) for p in picks):
        checksums.poison_block(candidates[index])
    return count
