"""Client-side retry policy: timeout, capped backoff, deterministic jitter.

A :class:`RetryPolicy` attaches to a whole filesystem
(``pfs.retry = policy``), one file (``handle.retry = policy``), or a
:class:`~repro.pfs.client.PFSClient`. With a policy in place every PFS
sub-request races against a timeout; a timed-out or failed sub-request
backs off and retries — against the failover target when the health layer
has rerouted the dead server — until it succeeds or ``max_attempts`` is
exhausted, at which point the request fails with the typed
:class:`~repro.pfs.health.ServerUnavailable` instead of deadlocking.

Backoff delays are fully deterministic: attempt ``k`` sleeps
``min(cap, base * 2**(k-1))`` scaled by a jitter factor drawn from
:func:`repro.util.rng.derive_rng` keyed on the policy seed, the
sub-request's identity, and the attempt number. No wall-clock, no shared
RNG state — replays are bit-identical, serial or under ``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import derive_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable, picklable retry configuration.

    Args:
        timeout: seconds to wait for one sub-request attempt before
            interrupting it; ``None`` disables the timeout race (failures
            still retry — useful when only crashes, not hangs, matter).
        max_attempts: total attempts per sub-request (>= 1).
        backoff_base: delay before the second attempt, seconds.
        backoff_cap: upper bound on any single backoff delay, seconds.
        jitter: fraction of the delay drawn uniformly at random and added
            on top (0 disables jitter; 0.25 means up to +25%).
        seed: root of the jitter stream; same seed ⇒ same delays.
    """

    timeout: float | None = 1.0
    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {self.timeout}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {self.backoff_cap}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, key: tuple = ()) -> float:
        """Backoff before attempt ``attempt + 1`` (``attempt`` >= 1 failed).

        ``key`` identifies the sub-request (file name, op, offset, size);
        distinct sub-requests get independent jitter streams so a burst of
        failures does not retry in lock-step, yet every stream replays
        identically for a fixed seed.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))
        if base <= 0.0:
            return 0.0
        if self.jitter == 0.0:
            return base
        rng = derive_rng(self.seed, "retry", *[str(k) for k in key], attempt)
        return base * (1.0 + self.jitter * float(rng.random()))
