"""The fault injector: turns a FaultSchedule into DES events.

One :class:`FaultInjector` binds a schedule to a concrete simulator +
filesystem. :meth:`FaultInjector.install` resolves server names, enables
in-flight tracking on every server, and spawns one driver process per
fault event — all driven by the DES clock, so a given (seed, schedule)
replays bit-identically, serial or under ``--jobs N``.

Fault semantics:

- **crash** — permanent: :meth:`ParallelFileSystem.fail_server` marks the
  server dead, rebuilds the failover route map, and interrupts in-flight
  sub-requests with :class:`~repro.pfs.health.ServerUnavailable`.
- **restore** — the inverse of crash: the server rejoins *empty*
  (:meth:`ParallelFileSystem.restore_server` wipes its extents and checksum
  tags), the route map heals, and — when a
  :class:`~repro.online.rebuild.RebuildManager` is attached — a backfill
  moves its placements home. Restoring a live server is a no-op.
- **hang** — transient: the injector puts the server's disk and NIC
  resources on :meth:`~repro.simulate.resources.Resource.hold` for the
  window. In-service sub-requests drain normally (their payloads were
  already in flight), but queued and newly arriving ones stall exactly as
  behind an unresponsive daemon, then proceed when the hang clears. The
  stall is idle time in the busy-time monitor — nothing is serviced.
- **degrade** — the server device's ``slowdown`` becomes the product of
  all currently active degrade factors; when the last window expires the
  product is the exact float 1.0 again.
- **blip** — same product mechanism on the shared network model's
  ``congestion`` multiplier.

When a tracer is attached, every injected fault emits a ``fault``-phase
span on the target's track (network blips target ``"network"``), so Chrome
traces show fault windows inline with the I/O they disturb.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.faults.corruption import corrupt_server
from repro.faults.schedule import (
    DataCorruption,
    FaultEvent,
    FaultSchedule,
    FaultSpecError,
    MdsCrash,
    NetworkBlip,
    ServerCrash,
    ServerDegrade,
    ServerHang,
    ServerRestore,
)
from repro.pfs.filesystem import ParallelFileSystem
from repro.simulate.engine import Simulator
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class FaultStats:
    """Picklable fault + recovery summary of one run.

    The first four fields count *injected* faults; the rest are the client
    stack's resilience counters (see :class:`repro.pfs.health.ServerHealth`).
    Carried on :class:`repro.experiments.harness.RunResult` so parallel
    workers ship it back and determinism tests can compare runs directly.
    """

    crashes: int = 0
    hangs: int = 0
    degrades: int = 0
    blips: int = 0
    corruptions: int = 0
    restores: int = 0
    servers_failed: int = 0
    servers_restored: int = 0
    retries: int = 0
    timeouts: int = 0
    failovers: int = 0
    rerouted_subrequests: int = 0
    exhausted: int = 0
    #: Metadata-cluster resilience (repro.pfs.mds_cluster.ShardHealth);
    #: all zero unless the run had a sharded MDS with mds-crash faults.
    mds_crashes: int = 0
    mds_recoveries: int = 0
    mds_retries: int = 0
    mds_unavailable: int = 0

    @property
    def total_injected(self) -> int:
        return (
            self.crashes
            + self.hangs
            + self.degrades
            + self.blips
            + self.corruptions
            + self.restores
            + self.mds_crashes
        )


def _product(factors: list[float]) -> float:
    result = 1.0
    for factor in factors:
        result *= factor
    return result


class FaultInjector:
    """Applies one :class:`FaultSchedule` to one simulator + filesystem."""

    def __init__(
        self,
        sim: Simulator,
        pfs: ParallelFileSystem,
        schedule: FaultSchedule,
        seed: int = 0,
    ):
        self.sim = sim
        self.pfs = pfs
        self.schedule = schedule.validate(n_servers=pfs.n_servers)
        #: Seeds the corruption unit-sampling streams (the run seed, so the
        #: same (seed, schedule) poisons the same units in every replay).
        self.seed = seed
        self._by_name = {server.name: i for i, server in enumerate(pfs.servers)}
        self.injected = {
            "crash": 0,
            "restore": 0,
            "hang": 0,
            "degrade": 0,
            "blip": 0,
            "corrupt": 0,
            "mds-crash": 0,
        }
        self.units_poisoned = 0
        self._corrupt_seq = 0
        self._slowdowns: dict[int, list[float]] = {}
        self._blips: list[float] = []
        self._installed = False

    def _resolve(self, server: int | str) -> int:
        if isinstance(server, int):
            if not (0 <= server < self.pfs.n_servers):
                raise FaultSpecError(
                    f"server index {server} out of range 0..{self.pfs.n_servers - 1}"
                )
            return server
        try:
            return self._by_name[server]
        except KeyError:
            known = ", ".join(sorted(self._by_name))
            raise FaultSpecError(f"unknown server {server!r}; servers: {known}") from None

    def _resolve_shard(self, shard: int | str) -> int:
        cluster = self.pfs.mds
        if not hasattr(cluster, "crash_shard"):
            raise FaultSpecError(
                "mds-crash faults require a sharded metadata cluster "
                "(run with --mds-shards >= 1)"
            )
        if isinstance(shard, str):
            if shard.startswith("mds") and shard[3:].isdigit():
                shard = int(shard[3:])
            else:
                known = ", ".join(s.name for s in cluster.shards)
                raise FaultSpecError(f"unknown metadata shard {shard!r}; shards: {known}")
        if not (0 <= shard < cluster.n_shards):
            raise FaultSpecError(
                f"shard index {shard} out of range 0..{cluster.n_shards - 1}"
            )
        return shard

    def install(self) -> "FaultInjector":
        """Arm the schedule; call once, before ``sim.run``. Returns self.

        Resolves every server target eagerly so a bad spec fails here with
        :class:`FaultSpecError` rather than mid-simulation.
        """
        if self._installed:
            raise RuntimeError("FaultInjector.install() called twice")
        self._installed = True
        for server in self.pfs.servers:
            server.enable_fault_tracking()
        if self.schedule.corruptions():
            # Corruption is only observable through checksummed reads;
            # arm end-to-end integrity before any unit can be poisoned.
            self.pfs.enable_integrity()
        if self.schedule.mds_crashes():
            # Lookups must run interruptibly so a shard crash can abort
            # them mid-service; armed once, before any event fires.
            self._resolve_shard(0)  # raises FaultSpecError on a legacy MDS
            self.pfs.mds.arm_interrupts()
        for event in self.schedule.sorted_events():
            server_id = None
            if isinstance(event, MdsCrash):
                server_id = self._resolve_shard(event.shard)
            elif not isinstance(event, NetworkBlip):
                server_id = self._resolve(event.server)
            self.sim.process(self._fire(event, server_id), name=f"fault:{event.kind}")
        return self

    def _fire(self, event: FaultEvent, server_id: int | None) -> Generator:
        sim = self.sim
        if event.time > 0:
            yield sim.timeout(event.time)
        tracer = sim.tracer
        if isinstance(event, ServerCrash):
            server = self.pfs.servers[server_id]
            self.injected["crash"] += 1
            if tracer is not None:
                tracer.on_fault("crash", server.name, sim.now, 0.0)
            self.pfs.fail_server(server_id)
            return
        if isinstance(event, ServerRestore):
            server = self.pfs.servers[server_id]
            if not server.is_failed:
                return  # Restoring a live server is a no-op.
            self.injected["restore"] += 1
            if tracer is not None:
                tracer.on_fault("restore", server.name, sim.now, 0.0)
            # The server rejoins *empty* (its extents and checksum tags are
            # wiped): a crash is permanent data loss on that box, and only
            # the rebuild manager — if attached — re-populates it.
            self.pfs.restore_server(server_id)
            return
        if isinstance(event, MdsCrash):
            cluster = self.pfs.mds
            shard = cluster.shards[server_id]
            if not cluster.crash_shard(server_id):
                return  # Crashing a dead shard is a no-op.
            self.injected["mds-crash"] += 1
            crashed_at = sim.now
            if tracer is not None:
                tracer.on_fault("mds-crash", shard.name, crashed_at, 0.0)
            if cluster.recovery_delay is None:
                return  # Degraded mode: the arc stays down.
            yield sim.timeout(cluster.recovery_delay)
            successor = cluster.recover_shard(server_id)
            if tracer is not None and successor is not None:
                # The recovery span covers the whole outage window.
                tracer.on_fault("mds-recovery", shard.name, crashed_at, sim.now - crashed_at)
            return
        if isinstance(event, ServerHang):
            server = self.pfs.servers[server_id]
            if server.is_failed:
                return  # Hanging a dead server is a no-op.
            self.injected["hang"] += 1
            if tracer is not None:
                tracer.on_fault("hang", server.name, sim.now, event.duration)
            # Stall both service stations; in-service sub-requests drain,
            # queued/arriving ones wait out the window.
            server.disk.hold()
            server.nic.hold()
            yield sim.timeout(event.duration)
            server.disk.resume()
            server.nic.resume()
            return
        if isinstance(event, DataCorruption):
            server = self.pfs.servers[server_id]
            if server.is_failed:
                return  # A dead server's data is unreachable either way.
            self.injected["corrupt"] += 1
            sequence = self._corrupt_seq
            self._corrupt_seq += 1
            rng = derive_rng(self.seed, "corrupt", server_id, sequence)
            self.units_poisoned += corrupt_server(server.checksums, event.rate, rng)
            if tracer is not None:
                tracer.on_fault("corrupt", server.name, sim.now, 0.0)
            return
        if isinstance(event, ServerDegrade):
            device = self.pfs.servers[server_id].device
            self.injected["degrade"] += 1
            if tracer is not None:
                tracer.on_fault(
                    "degrade", self.pfs.servers[server_id].name, sim.now, event.duration
                )
            active = self._slowdowns.setdefault(server_id, [])
            active.append(event.factor)
            device.slowdown = _product(active)
            yield sim.timeout(event.duration)
            active.remove(event.factor)
            # Recompute from the survivors instead of dividing: with no
            # active windows the product is the exact float 1.0 again.
            device.slowdown = _product(active)
            return
        # NetworkBlip
        self.injected["blip"] += 1
        if tracer is not None:
            tracer.on_fault("blip", "network", sim.now, event.duration)
        self._blips.append(event.factor)
        self.pfs.network.congestion = _product(self._blips)
        yield sim.timeout(event.duration)
        self._blips.remove(event.factor)
        self.pfs.network.congestion = _product(self._blips)

    def stats(self) -> FaultStats:
        """Snapshot injected-fault counts + the filesystem's recovery counters."""
        counters = self.pfs.health.counters()
        fault_counters = getattr(self.pfs.mds, "fault_counters", None)
        mds_counters = fault_counters() if fault_counters is not None else {}
        return FaultStats(
            crashes=self.injected["crash"],
            hangs=self.injected["hang"],
            degrades=self.injected["degrade"],
            blips=self.injected["blip"],
            corruptions=self.injected["corrupt"],
            restores=self.injected["restore"],
            **counters,
            **mds_counters,
        )


def inject(
    sim: Simulator,
    pfs: ParallelFileSystem,
    schedule: FaultSchedule,
    seed: int = 0,
) -> FaultInjector:
    """Build and install an injector in one call; returns it (for stats)."""
    return FaultInjector(sim, pfs, schedule, seed=seed).install()
