"""Declarative fault schedules: typed specs, a parser, stochastic generation.

A :class:`FaultSchedule` is an immutable, picklable list of fault events in
simulated time. Schedules come from three places:

- **scripted**: construct the spec dataclasses directly in code/tests;
- **CLI strings**: :func:`parse_faults` understands the compact grammar
  used by ``run-ior --faults`` and ``chaos`` (see the README table)::

      crash:<server>@<t>                 permanent server crash at t
      hang:<server>@<t>+<dur>            server unresponsive for dur seconds
      degrade:<server>@<t>x<factor>+<dur> device slowdown factor over window
      blip@<t>x<factor>+<dur>            network-wide slowdown over window
      corrupt:<server>@<t>[%<rate>]      silently corrupt written stripe units
      mds-crash:<shard>@<t>              crash a metadata shard at t
      restore:<server>@<t>               crashed server rejoins (empty) at t

  events separated by ``;``; ``<server>`` is a server name (``sserver0``)
  or integer index; malformed specs raise :class:`FaultSpecError`;
- **stochastic**: :meth:`FaultSchedule.random` draws event counts, times,
  targets, factors, and durations from :func:`repro.util.rng.derive_rng`
  streams — the same seed always yields the same schedule, so chaos sweeps
  replay bit-identically, serial or parallel.

Every schedule also round-trips: :meth:`FaultSchedule.to_spec` prints the
grammar string whose :func:`parse_faults` yields an equal schedule, so
schedules can live in reports and be replayed verbatim.

The schedule itself never touches the simulation; the
:class:`~repro.faults.injector.FaultInjector` turns it into DES events.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.util.rng import derive_rng


class FaultSpecError(ValueError):
    """A fault spec string (or schedule) is malformed.

    Subclasses ValueError so generic validation handling still catches it;
    the CLI maps it to exit code 2 with the message, never a traceback.
    """


@dataclass(frozen=True)
class ServerCrash:
    """Permanent server failure at ``time``."""

    time: float
    server: int | str

    kind = "crash"


@dataclass(frozen=True)
class ServerHang:
    """Server unresponsive during ``[time, time + duration)``.

    Queued and newly arriving sub-requests stall behind the hang; with a
    :class:`~repro.faults.retry.RetryPolicy` in place, clients time out and
    retry (the server is *not* marked dead — retries against it succeed
    once the hang clears).
    """

    time: float
    server: int | str
    duration: float

    kind = "hang"


@dataclass(frozen=True)
class ServerDegrade:
    """Device service times multiplied by ``factor`` during the window."""

    time: float
    server: int | str
    factor: float
    duration: float

    kind = "degrade"


@dataclass(frozen=True)
class NetworkBlip:
    """All network transfer times multiplied by ``factor`` during the window."""

    time: float
    factor: float
    duration: float

    kind = "blip"


@dataclass(frozen=True)
class DataCorruption:
    """Silent corruption of written stripe units on ``server`` at ``time``.

    ``rate`` in (0, 1] is the fraction of the server's written stripe units
    whose stored CRC tags flip to poisoned (at least one unit if any exist).
    The unit sample is seed-deterministic — drawn by the injector from
    :func:`repro.util.rng.derive_rng` — so chaos runs replay bit-identically
    under ``--jobs N``. Installing a schedule with corruption events turns
    end-to-end checksumming on (:mod:`repro.pfs.integrity`); the corrupted
    units are later *detected* on read, never silently returned.
    """

    time: float
    server: int | str
    rate: float = 1.0

    kind = "corrupt"


@dataclass(frozen=True)
class MdsCrash:
    """Permanent crash of metadata shard ``shard`` at ``time``.

    Requires a sharded metadata cluster
    (:class:`repro.pfs.mds_cluster.MetadataCluster`); installing against a
    legacy single MetadataServer raises :class:`FaultSpecError`. The
    shard's in-memory namespace is lost, its journal bytes survive; when
    the cluster has recovery enabled the injector replays the journal on
    the ring successor after ``recovery_delay``.
    """

    time: float
    shard: int | str

    kind = "mds-crash"


@dataclass(frozen=True)
class ServerRestore:
    """A crashed data server rejoins the cluster *empty* at ``time``.

    The rejoin models a chassis swap: same identity and device class, no
    surviving data. :meth:`repro.pfs.filesystem.ParallelFileSystem.restore_server`
    drops the victim's extent table entries and checksum tags, revives it in
    :class:`~repro.pfs.health.ServerHealth`, and — when a
    :class:`~repro.online.rebuild.RebuildManager` is attached — triggers a
    backfill so placements whose natural home is the restored server migrate
    home. Restoring a server that never crashed (or was already restored) is
    a no-op; the injector still counts the event as injected.
    """

    time: float
    server: int | str

    kind = "restore"


FaultEvent = (
    ServerCrash
    | ServerHang
    | ServerDegrade
    | NetworkBlip
    | DataCorruption
    | MdsCrash
    | ServerRestore
)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable collection of fault events (any order; injector sorts)."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def validate(self, n_servers: int | None = None) -> "FaultSchedule":
        """Sanity-check every event; returns self for chaining.

        With ``n_servers`` given, integer server targets are range-checked
        (names resolve later, against the actual filesystem).
        """
        for event in self.events:
            if event.time < 0:
                raise FaultSpecError(f"fault time must be >= 0, got {event.time} in {event}")
            duration = getattr(event, "duration", None)
            if duration is not None and duration <= 0:
                raise FaultSpecError(f"fault duration must be > 0, got {duration} in {event}")
            factor = getattr(event, "factor", None)
            if factor is not None and factor < 1.0:
                raise FaultSpecError(
                    f"slowdown factor must be >= 1.0, got {factor} in {event}"
                )
            rate = getattr(event, "rate", None)
            if rate is not None and not (0.0 < rate <= 1.0):
                raise FaultSpecError(
                    f"corruption rate must be in (0, 1], got {rate} in {event}"
                )
            server = getattr(event, "server", None)
            if isinstance(server, int) and n_servers is not None:
                if not (0 <= server < n_servers):
                    raise FaultSpecError(
                        f"server index {server} out of range 0..{n_servers - 1} in {event}"
                    )
            shard = getattr(event, "shard", None)
            if isinstance(shard, int) and shard < 0:
                raise FaultSpecError(f"shard index must be >= 0, got {shard} in {event}")
        return self

    def sorted_events(self) -> tuple[FaultEvent, ...]:
        """Events by time (stable for ties), the injection order."""
        return tuple(sorted(self.events, key=lambda e: e.time))

    def crashes(self) -> tuple[ServerCrash, ...]:
        return tuple(e for e in self.events if isinstance(e, ServerCrash))

    def corruptions(self) -> tuple[DataCorruption, ...]:
        return tuple(e for e in self.events if isinstance(e, DataCorruption))

    def mds_crashes(self) -> tuple[MdsCrash, ...]:
        return tuple(e for e in self.events if isinstance(e, MdsCrash))

    def restores(self) -> tuple[ServerRestore, ...]:
        return tuple(e for e in self.events if isinstance(e, ServerRestore))

    def to_spec(self) -> str:
        """Print the schedule in the :func:`parse_faults` grammar.

        The inverse of parsing: ``parse_faults(s.to_spec()) == s`` for any
        valid schedule, including :meth:`random`-generated ones. Floats are
        printed with ``repr`` so the round trip is bit-exact; a corruption
        event with the default rate 1.0 omits the ``%<rate>`` suffix.
        """
        clauses: list[str] = []
        for event in self.events:
            if isinstance(event, ServerCrash):
                clauses.append(f"crash:{event.server}@{event.time!r}")
            elif isinstance(event, ServerHang):
                clauses.append(f"hang:{event.server}@{event.time!r}+{event.duration!r}")
            elif isinstance(event, ServerDegrade):
                clauses.append(
                    f"degrade:{event.server}@{event.time!r}x{event.factor!r}"
                    f"+{event.duration!r}"
                )
            elif isinstance(event, NetworkBlip):
                clauses.append(f"blip@{event.time!r}x{event.factor!r}+{event.duration!r}")
            elif isinstance(event, DataCorruption):
                if event.rate == 1.0:
                    clauses.append(f"corrupt:{event.server}@{event.time!r}")
                else:
                    clauses.append(f"corrupt:{event.server}@{event.time!r}%{event.rate!r}")
            elif isinstance(event, MdsCrash):
                clauses.append(f"mds-crash:{event.shard}@{event.time!r}")
            elif isinstance(event, ServerRestore):
                clauses.append(f"restore:{event.server}@{event.time!r}")
            else:
                raise FaultSpecError(f"cannot format unknown event type: {event!r}")
        return ";".join(clauses)

    @classmethod
    def random(
        cls,
        seed: int,
        horizon: float,
        n_servers: int,
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        degrade_rate: float = 0.0,
        blip_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        hang_duration: tuple[float, float] = (0.05, 0.5),
        degrade_factor: tuple[float, float] = (1.5, 4.0),
        degrade_duration: tuple[float, float] = (0.1, 1.0),
        blip_factor: tuple[float, float] = (1.5, 3.0),
        blip_duration: tuple[float, float] = (0.05, 0.3),
        corrupt_fraction: tuple[float, float] = (0.05, 0.5),
        max_crashes: int | None = None,
        mds_crash_rate: float = 0.0,
        n_mds_shards: int | None = None,
        max_mds_crashes: int | None = None,
        class_counts: tuple[int, ...] | None = None,
        crash_restore_delay: float | None = None,
    ) -> "FaultSchedule":
        """Draw a stochastic schedule; same arguments ⇒ same schedule.

        Each ``*_rate`` is the *expected number of events* of that kind over
        ``horizon``; counts are Poisson draws, times uniform in
        ``[0, horizon)``, targets uniform over servers, factors/durations
        uniform over the given ranges. ``max_crashes`` caps permanent
        failures (defaults to ``n_servers - 1`` so at least one server
        survives). Corruption events poison a uniform draw from
        ``corrupt_fraction`` of the target's written stripe units.

        ``class_counts`` — server counts per performance class, in index
        order (servers ``0..c0-1`` are class 0, the next ``c1`` class 1, …;
        must sum to ``n_servers``) — enforces a per-class survivors floor:
        a crash is only ever aimed at a server whose class still has at
        least two standing, so no schedule can leave the route map with a
        dead class. The floor is conservative: paired restores (below) are
        *not* credited back, so the guarantee holds even if every restore
        were dropped. ``None`` preserves the legacy target stream
        bit-for-bit. ``crash_restore_delay`` pairs every drawn crash with a
        :class:`ServerRestore` of the same server ``delay`` seconds later.
        """
        if horizon <= 0:
            raise FaultSpecError(f"horizon must be > 0, got {horizon}")
        if n_servers < 1:
            raise FaultSpecError(f"n_servers must be >= 1, got {n_servers}")
        if max_crashes is None:
            max_crashes = max(0, n_servers - 1)
        if crash_restore_delay is not None and crash_restore_delay <= 0:
            raise FaultSpecError(
                f"crash_restore_delay must be > 0, got {crash_restore_delay}"
            )
        class_of: list[int] | None = None
        class_alive: list[int] | None = None
        if class_counts is not None:
            if any(c < 0 for c in class_counts) or sum(class_counts) != n_servers:
                raise FaultSpecError(
                    f"class_counts {class_counts!r} must be >= 0 and sum to {n_servers}"
                )
            class_of = []
            for class_index, count in enumerate(class_counts):
                class_of.extend([class_index] * count)
            class_alive = list(class_counts)
        if mds_crash_rate > 0 and (n_mds_shards is None or n_mds_shards < 1):
            raise FaultSpecError("mds_crash_rate > 0 requires n_mds_shards >= 1")
        if max_mds_crashes is None:
            # At least one shard survives, so every crash has a successor.
            max_mds_crashes = max(0, (n_mds_shards or 1) - 1)
        events: list[FaultEvent] = []
        for kind, rate in (
            ("crash", crash_rate),
            ("hang", hang_rate),
            ("degrade", degrade_rate),
            ("blip", blip_rate),
            ("corrupt", corrupt_rate),
            ("mds-crash", mds_crash_rate),
        ):
            if rate < 0:
                raise FaultSpecError(f"{kind}_rate must be >= 0, got {rate}")
            if rate == 0:
                continue
            rng = derive_rng(seed, "faults", kind)
            count = int(rng.poisson(rate))
            if kind == "crash":
                count = min(count, max_crashes)
            elif kind == "mds-crash":
                count = min(count, max_mds_crashes)
            for _ in range(count):
                time = float(rng.uniform(0.0, horizon))
                if kind == "crash":
                    if class_of is None:
                        target = int(rng.integers(0, n_servers))
                    else:
                        assert class_alive is not None
                        eligible = [
                            s for s in range(n_servers) if class_alive[class_of[s]] >= 2
                        ]
                        if not eligible:
                            break
                        target = eligible[int(rng.integers(0, len(eligible)))]
                        class_alive[class_of[target]] -= 1
                    events.append(ServerCrash(time, target))
                    if crash_restore_delay is not None:
                        events.append(ServerRestore(time + crash_restore_delay, target))
                elif kind == "mds-crash":
                    events.append(MdsCrash(time, int(rng.integers(0, n_mds_shards))))
                elif kind == "hang":
                    events.append(
                        ServerHang(
                            time,
                            int(rng.integers(0, n_servers)),
                            float(rng.uniform(*hang_duration)),
                        )
                    )
                elif kind == "degrade":
                    events.append(
                        ServerDegrade(
                            time,
                            int(rng.integers(0, n_servers)),
                            float(rng.uniform(*degrade_factor)),
                            float(rng.uniform(*degrade_duration)),
                        )
                    )
                elif kind == "blip":
                    events.append(
                        NetworkBlip(
                            time,
                            float(rng.uniform(*blip_factor)),
                            float(rng.uniform(*blip_duration)),
                        )
                    )
                else:
                    events.append(
                        DataCorruption(
                            time,
                            int(rng.integers(0, n_servers)),
                            float(rng.uniform(*corrupt_fraction)),
                        )
                    )
        return cls(tuple(events)).validate(n_servers=n_servers)


# -- spec-string parsing ----------------------------------------------------

_TIME = r"(?P<time>[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"
_DUR = r"(?P<duration>[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"
_FACTOR = r"(?P<factor>[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"
_SERVER = r"(?P<server>[A-Za-z_][A-Za-z0-9_\-]*|[0-9]+)"

_RATE = r"(?P<rate>[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"

_SHARD = r"(?P<shard>[A-Za-z_][A-Za-z0-9_\-]*|[0-9]+)"

_PATTERNS = {
    "crash": re.compile(rf"^crash:{_SERVER}@{_TIME}$"),
    "hang": re.compile(rf"^hang:{_SERVER}@{_TIME}\+{_DUR}$"),
    "degrade": re.compile(rf"^degrade:{_SERVER}@{_TIME}x{_FACTOR}\+{_DUR}$"),
    "blip": re.compile(rf"^blip@{_TIME}x{_FACTOR}\+{_DUR}$"),
    "corrupt": re.compile(rf"^corrupt:{_SERVER}@{_TIME}(?:%{_RATE})?$"),
    "mds-crash": re.compile(rf"^mds-crash:{_SHARD}@{_TIME}$"),
    "restore": re.compile(rf"^restore:{_SERVER}@{_TIME}$"),
}

_USAGE = (
    "expected one of: crash:<server>@<t>  hang:<server>@<t>+<dur>  "
    "degrade:<server>@<t>x<factor>+<dur>  blip@<t>x<factor>+<dur>  "
    "corrupt:<server>@<t>[%<rate>]  mds-crash:<shard>@<t>  "
    "restore:<server>@<t>  "
    "(';'-separated; <server> is a name like sserver0 or an index, "
    "<shard> a name like mds0 or an index)"
)


def _parse_server(token: str) -> int | str:
    return int(token) if token.isdigit() else token


def parse_faults(spec: str) -> FaultSchedule:
    """Parse a ``--faults`` spec string into a validated FaultSchedule.

    Raises :class:`FaultSpecError` naming the offending clause on any
    syntax or range problem.
    """
    events: list[FaultEvent] = []
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        kind = clause.split(":", 1)[0].split("@", 1)[0].strip().lower()
        pattern = _PATTERNS.get(kind)
        match = pattern.match(clause) if pattern is not None else None
        if match is None:
            raise FaultSpecError(f"malformed fault clause {clause!r}: {_USAGE}")
        groups = match.groupdict()
        time = float(groups["time"])
        if kind == "crash":
            events.append(ServerCrash(time, _parse_server(groups["server"])))
        elif kind == "hang":
            events.append(
                ServerHang(time, _parse_server(groups["server"]), float(groups["duration"]))
            )
        elif kind == "degrade":
            events.append(
                ServerDegrade(
                    time,
                    _parse_server(groups["server"]),
                    float(groups["factor"]),
                    float(groups["duration"]),
                )
            )
        elif kind == "blip":
            events.append(NetworkBlip(time, float(groups["factor"]), float(groups["duration"])))
        elif kind == "mds-crash":
            events.append(MdsCrash(time, _parse_server(groups["shard"])))
        elif kind == "restore":
            events.append(ServerRestore(time, _parse_server(groups["server"])))
        else:
            rate = 1.0 if groups.get("rate") is None else float(groups["rate"])
            events.append(DataCorruption(time, _parse_server(groups["server"]), rate))
    if not events:
        raise FaultSpecError(f"fault spec {spec!r} contains no events: {_USAGE}")
    return FaultSchedule(tuple(events)).validate()
