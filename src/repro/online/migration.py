"""Data migration between layout generations.

When the controller swaps a file's layout, the bytes written under the old
layout still live in the old generation's region files. The migrator moves
them through the ordinary PFS data path — chunked reads under the old
layout, writes under the new — so migration traffic competes with
foreground I/O on the same disk and NIC queues, which is precisely the cost
an online scheme must pay. A ``duty_cycle`` below 1.0 inserts idle gaps
between chunks (rate limiting), the standard knob for keeping migration off
the foreground's critical path.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field

from repro.online.pacing import check_pacing, duty_cycle_idle
from repro.pfs.filesystem import ParallelFileSystem, PFSFile
from repro.pfs.health import ServerUnavailable
from repro.pfs.layout import LayoutPolicy
from repro.util.units import MiB


class MigrationAborted(RuntimeError):
    """A migration pass stopped because a target/source server failed.

    The original file is untouched and stays readable under its old layout
    — chunks copy read-then-write, so an aborted pass never destroyed old
    bytes; the partially written shadow generation is simply abandoned.
    ``stats`` holds the progress up to the abort and ``cause`` the
    underlying :class:`~repro.pfs.health.ServerUnavailable`.
    """

    def __init__(self, message: str, stats: "MigrationStats", cause: ServerUnavailable):
        super().__init__(message)
        self.stats = stats
        self.cause = cause


@dataclass
class MigrationStats:
    """Accounting for one migration pass."""

    bytes_moved: int = 0
    chunks: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    ranges: list[tuple[int, int]] = field(default_factory=list)
    #: Shadow-generation extents released after an abort (0 on success).
    extents_released: int = 0

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


class RegionMigrator:
    """Moves a byte range of one file between two layout generations."""

    def __init__(
        self,
        pfs: ParallelFileSystem,
        file_name: str,
        chunk_size: int = 4 * MiB,
        duty_cycle: float = 1.0,
    ):
        check_pacing(chunk_size, duty_cycle)
        self.pfs = pfs
        self.file_name = file_name
        self.chunk_size = chunk_size
        self.duty_cycle = duty_cycle

    def _shadow(self, layout: LayoutPolicy, generation: int) -> PFSFile:
        """A handle addressing one generation's extents directly.

        Bypasses the MDS namespace on purpose: the logical file keeps its
        registered handle; shadows only route data-path requests at the old
        or new generation for the copy.
        """
        shadow = PFSFile(self.pfs, self.file_name, layout)
        shadow.layout_generation = generation
        # Shadows fail fast: a dead source/target server must abort the
        # pass (MigrationAborted) rather than fail over — rerouted shadow
        # writes would silently invalidate the just-planned placement.
        shadow.failfast = True
        return shadow

    def migrate(
        self,
        old_layout: LayoutPolicy,
        old_generation: int,
        new_layout: LayoutPolicy,
        new_generation: int,
        ranges: list[tuple[int, int]],
        stats: MigrationStats | None = None,
    ) -> Generator:
        """Copy ``ranges`` (offset, size) old → new; yields inside the DES.

        Returns (as generator value) a :class:`MigrationStats`. Pass a
        pre-created ``stats`` to observe progress live (``finished_at``
        tracks the last completed chunk, so an interrupted pass still
        reports its partial volume).

        If a server backing either generation fails mid-pass (the chunk
        read or write raises :class:`ServerUnavailable`), the pass aborts
        with :class:`MigrationAborted` carrying the partial stats; the
        old-generation data is left intact, so the caller can keep the old
        layout or re-plan a degraded one and retry.
        """
        sim = self.pfs.sim
        if stats is None:
            stats = MigrationStats()
        stats.started_at = sim.now
        stats.finished_at = sim.now
        stats.ranges = list(ranges)
        source = self._shadow(old_layout, old_generation)
        target = self._shadow(new_layout, new_generation)
        for offset, size in ranges:
            if size <= 0:
                continue
            cursor = offset
            end = offset + size
            while cursor < end:
                step = min(self.chunk_size, end - cursor)
                chunk_started = sim.now
                try:
                    yield from source.serve_inline("read", cursor, step)
                    yield from target.serve_inline("write", cursor, step)
                except ServerUnavailable as exc:
                    stats.finished_at = sim.now
                    # The partially written shadow generation is abandoned —
                    # release its extents so abort/retry cycles reuse the
                    # space instead of leaking simulated capacity forever.
                    stats.extents_released = self.pfs.free_extents(
                        f"{self.file_name}#g{new_generation}"
                    )
                    raise MigrationAborted(
                        f"migration of {self.file_name!r} aborted at offset {cursor} "
                        f"after {stats.bytes_moved} bytes: {exc}",
                        stats,
                        exc,
                    ) from exc
                stats.bytes_moved += step
                stats.chunks += 1
                stats.finished_at = sim.now
                cursor += step
                idle = duty_cycle_idle(sim.now - chunk_started, self.duty_cycle)
                if idle > 0:
                    yield sim.timeout(idle)
        stats.finished_at = sim.now
        return stats


def changed_ranges(
    old_layout: LayoutPolicy,
    new_layout: LayoutPolicy,
    file_extent: int,
) -> list[tuple[int, int]]:
    """Byte ranges whose striping differs between two layouts.

    Walks both layouts' segment structure over ``[0, file_extent)`` and
    keeps the pieces where the stripe vectors differ — only those need to
    move; byte ranges whose (h, s) is unchanged stay in place (their
    physical placement is identical by construction of round-robin striping
    within a region file).

    Note the ranges are maximal *aligned-at-boundary* pieces: a piece ends
    wherever either layout changes region.
    """
    if file_extent <= 0:
        return []
    out: list[tuple[int, int]] = []
    cursor = 0
    while cursor < file_extent:
        old_seg = old_layout.segments(cursor, file_extent - cursor)[0]
        new_seg = new_layout.segments(cursor, file_extent - cursor)[0]
        piece_end = cursor + min(old_seg.size, new_seg.size)
        if tuple(old_seg.config.stripes) != tuple(new_seg.config.stripes) or (
            old_seg.offset - old_seg.region_base != new_seg.offset - new_seg.region_base
        ):
            if out and out[-1][0] + out[-1][1] == cursor:
                out[-1] = (out[-1][0], out[-1][1] + piece_end - cursor)
            else:
                out.append((cursor, piece_end - cursor))
        cursor = piece_end
    return out
