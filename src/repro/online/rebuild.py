"""Durability under permanent server loss: rebuild / re-replication.

A permanent data-server crash strips every stripe-column copy that lived on
the victim. Failover (:mod:`repro.pfs.health`) keeps the cluster *serving*,
but nothing restores *redundancy*: until the dead copies are re-created, a
second crash can destroy the last copy of a region. The
:class:`RebuildManager` closes that window the way HDA-style heterogeneous
arrays do (arXiv:1510.04868): it reacts to
:meth:`~repro.pfs.filesystem.ParallelFileSystem.fail_server` by enumerating
the victim's placements from the extent table (the simulation's placement
metadata), re-replicates each stripe column from a surviving copy onto a
class-aware live target, and installs the new location as a
``replica_overrides`` entry — journaled two-phase
(``rebuild_begin``/``rebuild_commit``) through the metadata WAL, so a crash
mid-copy recovers with the *old* sites and the half-written extent is
garbage, never a committed location.

Rebuild traffic flows through the ordinary server data path — it contends
with foreground I/O on the same disk and NIC queues — throttled by the
shared :mod:`repro.online.pacing` ``duty_cycle`` discipline the scrubber
and migrator use. Server *rejoin* (``restore:<server>@<t>`` faults) wipes
the victim clean, revives it, and triggers a backfill: placements rebuilt
elsewhere migrate home and their override entries dissolve.

Everything observable lands in :class:`DurabilityStats`: regions at
reduced/zero redundancy over time, bytes-at-risk exposure windows,
time-to-restored-redundancy (MTTR) per crash, and typed
:class:`DataLossError` accounting when the last copy of written data dies
before rebuild reaches it.

Determinism: intake scans a sorted extent-table snapshot, the work queue is
FIFO, target selection walks sorted live-server lists under plain cursors,
and no RNG is involved — rebuild runs are bit-identical serial or under
``--jobs N``.
"""

from __future__ import annotations

import re
from collections import deque
from collections.abc import Generator
from dataclasses import dataclass, field

from repro.devices.base import OpType
from repro.online.pacing import check_pacing, duty_cycle_idle, written_runs
from repro.pfs.filesystem import ParallelFileSystem
from repro.pfs.health import ServerUnavailable
from repro.pfs.mds_cluster import MetadataUnavailable
from repro.util.units import MiB

_REBUILT_NS = re.compile(r"^(?P<base>.*)~r(?P<copy>[0-9]+)~b(?P<src>[0-9]+)$")
_REPLICA_NS = re.compile(r"^(?P<base>.*)~r(?P<copy>[0-9]+)$")
_EXTENT_NS = re.compile(r"^(?P<name>.*)#g(?P<generation>[0-9]+)$")


class DataLossError(RuntimeError):
    """The last copy of written data died before rebuild re-replicated it.

    Raised at failure-intake time when ``fail_on_loss`` is set on the
    manager (the CLI's ``run-ior --rebuild`` mode); otherwise the loss is
    only counted (``data_loss_events`` / ``data_lost_bytes`` in
    :class:`DurabilityStats`) so chaos sweeps complete and gate on the
    totals.
    """

    def __init__(self, message: str, lost_bytes: int = 0):
        super().__init__(message)
        self.lost_bytes = int(lost_bytes)


@dataclass(frozen=True)
class Placement:
    """Copy ``copy`` of the stripe column config-server ``server`` owns."""

    extent_ns: str
    region_id: int
    server: int
    copy: int


@dataclass(frozen=True)
class RebuildConfig:
    """Picklable rebuild knobs (threaded through RunJob / the harness)."""

    duty_cycle: float = 1.0
    chunk_size: int = 4 * MiB
    fail_on_loss: bool = False


@dataclass(frozen=True)
class DurabilityStats:
    """Picklable end-of-run durability summary (``RunResult.durability``)."""

    regions_tracked: int = 0
    regions_degraded_final: int = 0
    regions_lost: int = 0
    placements_rebuilt: int = 0
    bytes_rebuilt: int = 0
    chunks: int = 0
    data_loss_events: int = 0
    data_lost_bytes: int = 0
    at_risk_bytes_peak: int = 0
    at_risk_bytes_final: int = 0
    exposure_seconds: float = 0.0
    exposure_byte_seconds: float = 0.0
    crash_batches: int = 0
    restore_batches: int = 0
    #: Seconds from each crash to full restoration of the redundancy it
    #: stripped (only crashes whose every placement was restored loss-free).
    mttr_samples: tuple[float, ...] = ()
    quorum_acks: int = 0
    trailing_mirrors: int = 0
    quorum_window_failures: int = 0
    #: ``(time, regions_reduced, regions_zero, at_risk_bytes)`` after every
    #: durability state change, in time order.
    timeline: tuple[tuple[float, int, int, int], ...] = ()

    @property
    def mttr_mean(self) -> float:
        return sum(self.mttr_samples) / len(self.mttr_samples) if self.mttr_samples else 0.0

    @property
    def mttr_max(self) -> float:
        return max(self.mttr_samples) if self.mttr_samples else 0.0

    @property
    def fully_redundant(self) -> bool:
        """Every tracked region ended at full redundancy with zero loss."""
        return self.regions_degraded_final == 0 and self.regions_lost == 0


@dataclass
class _Batch:
    """One intake event's worth of work (a crash or a restore backfill)."""

    kind: str
    started_at: float
    remaining: set = field(default_factory=set)
    lost: bool = False


class RebuildManager:
    """Re-replicates placements lost to server crashes; backfills rejoins.

    Attach after the filesystem (and any fault injector) exists::

        manager = RebuildManager(pfs, duty_cycle=0.25)
        ...
        sim.run(done)                      # foreground workload
        sim.run(sim.process(manager.drain()))  # finish outstanding rebuild
        result = manager.stats()

    Attaching sets ``pfs.rebuild`` (which also vetoes the batched fast path
    — rebuild runs take the general tier) and registers failure/restore
    hooks on the filesystem.
    """

    def __init__(
        self,
        pfs: ParallelFileSystem,
        duty_cycle: float = 1.0,
        chunk_size: int = 4 * MiB,
        fail_on_loss: bool = False,
    ):
        check_pacing(chunk_size, duty_cycle)
        if pfs.rebuild is not None:
            raise RuntimeError("filesystem already has a RebuildManager attached")
        self.pfs = pfs
        self.duty_cycle = duty_cycle
        self.chunk_size = chunk_size
        self.fail_on_loss = fail_on_loss
        # Written-run geometry (and loss detection) reads the per-server
        # checksum tags; replicated layouts arm them at file creation, but a
        # manager attached to a replicas=1 filesystem still needs them to
        # account what a crash destroyed.
        pfs.enable_integrity()
        pfs.rebuild = self
        pfs._failure_hooks.append(self._on_failure)
        pfs._restore_hooks.append(self._on_restore)
        # Work state.
        self._queue: deque[Placement] = deque()
        self._queued: set[Placement] = set()
        self._stalled: list[Placement] = []
        self._worker = None
        self._idle = None
        # Durability accounting.
        self._at_risk: dict[Placement, int] = {}
        self._at_risk_total = 0
        self._missing_by_region: dict[tuple[str, int], set[Placement]] = {}
        self._zero_regions: set[tuple[str, int]] = set()
        self._regions_seen: set[tuple[str, int]] = set()
        self._batches: dict[int, _Batch] = {}
        self._batch_of: dict[Placement, int] = {}
        self._next_batch = 0
        self._target_cursor: dict[int, int] = {}
        self._last_t = pfs.sim.now
        self.placements_rebuilt = 0
        self.bytes_rebuilt = 0
        self.chunks = 0
        self.data_loss_events = 0
        self.data_lost_bytes = 0
        self.at_risk_peak = 0
        self.exposure_seconds = 0.0
        self.exposure_byte_seconds = 0.0
        self.crash_batches = 0
        self.restore_batches = 0
        self.mttr_samples: list[float] = []
        self.aborted_copies = 0
        self._timeline: list[tuple[float, int, int, int]] = []

    # -- exposure accounting ------------------------------------------------

    def _integrate(self) -> None:
        """Advance the exposure integrals to the current instant."""
        now = self.pfs.sim.now
        dt = now - self._last_t
        if dt > 0 and self._at_risk_total > 0:
            self.exposure_seconds += dt
            self.exposure_byte_seconds += self._at_risk_total * dt
        self._last_t = now

    def _mark_timeline(self) -> None:
        point = (
            self.pfs.sim.now,
            sum(1 for missing in self._missing_by_region.values() if missing),
            len(self._zero_regions),
            self._at_risk_total,
        )
        if self._timeline and self._timeline[-1][0] == point[0]:
            self._timeline[-1] = point
        else:
            self._timeline.append(point)

    # -- placement resolution ----------------------------------------------

    def _natural_home(self, placement: Placement) -> int:
        if placement.copy == 0:
            return placement.server
        return self.pfs.replica_target(placement.server, placement.copy)

    def _column_copies(self, placement: Placement) -> int:
        """Replica count of the placement's region, or 0 if it went stale."""
        match = _EXTENT_NS.match(placement.extent_ns)
        if match is None:
            return 0
        handle = self.pfs._files.get(match.group("name"))
        if handle is None or handle.layout_generation != int(match.group("generation")):
            return 0
        copies = handle.layout.replica_count(placement.region_id)
        return copies if placement.copy < copies else 0

    def _copy_extent(self, placement: Placement, copy: int):
        """Current ``(server, base)`` of one copy's extent, or None if absent."""
        target, ns = self.pfs.replica_extent(
            placement.extent_ns, placement.region_id, placement.server, copy
        )
        base = self.pfs._extent_bases.get((ns, placement.region_id, target))
        return None if base is None else (target, base)

    def _column_ranges(self, placement: Placement, copies: int) -> list[tuple[int, int]]:
        """Column-relative written ``(offset, size)`` runs of the placement.

        Geometry comes from the first copy (lowest index) whose extent still
        exists — alive or dead: a dead server's checksum tags are the
        bookkeeping record of what was placed, exactly what real placement
        metadata would hold. Copy 0 and rebuilt (``~b``) extents are
        exclusive to the column and exact; a shared mirror bucket may
        overshoot onto sibling columns' offsets, a conservative (never
        lossy) approximation.
        """
        for copy in range(copies):
            located = self._copy_extent(placement, copy)
            if located is None:
                continue
            server_id, base = located
            checks = self.pfs.servers[server_id].checksums
            if checks is None:
                continue
            runs = written_runs(checks, base, self.pfs.EXTENT_SPACING)
            if runs:
                return [(offset - base, size) for offset, size in runs]
        return []

    def _live_source(self, placement: Placement, copies: int, exclude: int | None = None):
        """First copy of the column on a live server with an extent, or None."""
        health = self.pfs.health
        for copy in range(copies):
            located = self._copy_extent(placement, copy)
            if located is None:
                continue
            server_id, base = located
            if server_id == exclude or not health.is_alive(server_id):
                continue
            return server_id, base
        return None

    def _pick_target(self, placement: Placement, copies: int) -> tuple[int, str, bool] | None:
        """Choose a live target: ``(server, extent_ns, natural)``, or None.

        The natural home wins whenever it is alive (backfill dissolves the
        override). Otherwise targets are class-aware — live servers of the
        natural home's class first, then any live server — excluding hosts
        of the column's other copies, walked with a per-class round-robin
        cursor for deterministic spread.
        """
        pfs = self.pfs
        health = pfs.health
        natural = self._natural_home(placement)
        if placement.copy == 0:
            natural_ns = placement.extent_ns
        else:
            natural_ns = f"{placement.extent_ns}~r{placement.copy}"
        if health.is_alive(natural):
            return natural, natural_ns, True
        holders = set()
        for copy in range(copies):
            if copy == placement.copy:
                continue
            located = self._copy_extent(placement, copy)
            if located is not None:
                holders.add(located[0])
        cls = health.class_of(natural)
        same = [
            s
            for s in range(pfs.n_servers)
            if health.is_alive(s) and s not in holders and health.class_of(s) == cls
        ]
        other = [
            s
            for s in range(pfs.n_servers)
            if health.is_alive(s) and s not in holders and health.class_of(s) != cls
        ]
        for pool_cls, pool in ((cls, same), (-1, other)):
            if pool:
                cursor = self._target_cursor.get(pool_cls, 0)
                self._target_cursor[pool_cls] = cursor + 1
                target = pool[cursor % len(pool)]
                rebuilt_ns = (
                    f"{placement.extent_ns}~r{placement.copy}~b{placement.server}"
                )
                return target, rebuilt_ns, False
        return None

    # -- intake -------------------------------------------------------------

    def _open_batch(self, kind: str) -> int:
        batch_id = self._next_batch
        self._next_batch += 1
        self._batches[batch_id] = _Batch(kind=kind, started_at=self.pfs.sim.now)
        if kind == "crash":
            self.crash_batches += 1
        else:
            self.restore_batches += 1
        return batch_id

    def _enqueue(self, placement: Placement, bytes_at_risk: int, batch_id: int) -> None:
        if placement in self._queued:
            return
        self._queued.add(placement)
        self._queue.append(placement)
        self._batch_of[placement] = batch_id
        self._batches[batch_id].remaining.add(placement)
        if bytes_at_risk > 0 and placement not in self._at_risk:
            self._at_risk[placement] = bytes_at_risk
            self._at_risk_total += bytes_at_risk
            self.at_risk_peak = max(self.at_risk_peak, self._at_risk_total)
        region = (placement.extent_ns, placement.region_id)
        self._regions_seen.add(region)
        self._missing_by_region.setdefault(region, set()).add(placement)

    def _resolve(self, placement: Placement, restored: bool) -> None:
        """A placement left the pending set (rebuilt, lost, or gone stale)."""
        self._queued.discard(placement)
        risk = self._at_risk.pop(placement, 0)
        if risk:
            self._at_risk_total -= risk
        region = (placement.extent_ns, placement.region_id)
        missing = self._missing_by_region.get(region)
        if missing is not None:
            missing.discard(placement)
        batch_id = self._batch_of.pop(placement, None)
        if batch_id is not None:
            batch = self._batches[batch_id]
            batch.remaining.discard(placement)
            if not restored:
                batch.lost = True
            if not batch.remaining:
                if batch.kind == "crash" and not batch.lost:
                    self.mttr_samples.append(self.pfs.sim.now - batch.started_at)
                del self._batches[batch_id]

    def _record_loss(self, placement: Placement, lost_bytes: int) -> None:
        self.data_loss_events += 1
        self.data_lost_bytes += lost_bytes
        self._zero_regions.add((placement.extent_ns, placement.region_id))

    def _victim_placements(self, victim: int) -> list[tuple[Placement, int]]:
        """Logical placements living on ``victim``, with column replica counts.

        Enumerated from a sorted extent-table snapshot: plain extents are
        copy-0 placements, rebuilt (``~b``) extents carry their identity in
        the namespace, and a shared mirror bucket expands to every config
        server whose copy currently lands in it. Stale generations and
        unregistered (shadow) namespaces are skipped.
        """
        out: list[tuple[Placement, int]] = []
        seen: set[Placement] = set()
        pfs = self.pfs
        for namespace, region_id, server_id in sorted(pfs._extent_bases):
            if server_id != victim:
                continue
            rebuilt = _REBUILT_NS.match(namespace)
            replica = None if rebuilt is not None else _REPLICA_NS.match(namespace)
            if rebuilt is not None:
                candidates = [
                    Placement(
                        rebuilt.group("base"),
                        region_id,
                        int(rebuilt.group("src")),
                        int(rebuilt.group("copy")),
                    )
                ]
            elif replica is not None:
                base_ns = replica.group("base")
                copy = int(replica.group("copy"))
                candidates = [
                    Placement(base_ns, region_id, s, copy)
                    for s in range(pfs.n_servers)
                    if pfs.replica_extent(base_ns, region_id, s, copy)[0] == victim
                ]
            else:
                candidates = [Placement(namespace, region_id, victim, 0)]
            for placement in candidates:
                if placement in seen:
                    continue
                seen.add(placement)
                copies = self._column_copies(placement)
                if copies == 0:
                    continue
                # The candidate must actually resolve to the victim (a
                # bucket expansion can also surface overridden placements).
                located = self._copy_extent(placement, placement.copy)
                if located is None or located[0] != victim:
                    continue
                out.append((placement, copies))
        return out

    def _on_failure(self, victim: int) -> None:
        """fail_server hook: synchronous intake of the victim's placements."""
        self._integrate()
        victims = self._victim_placements(victim)
        if victims:
            batch_id = self._open_batch("crash")
            lost_total = 0
            for placement, copies in victims:
                ranges = self._column_ranges(placement, copies)
                risk = sum(size for _, size in ranges)
                if risk > 0 and self._live_source(placement, copies) is None:
                    # The victim held the last copy of written column data.
                    self._record_loss(placement, risk)
                    lost_total += risk
                    continue
                self._enqueue(placement, risk, batch_id)
            if not self._batches[batch_id].remaining:
                del self._batches[batch_id]
            if lost_total and self.fail_on_loss:
                self._mark_timeline()
                raise DataLossError(
                    f"server {victim} held the last copy of {lost_total} written "
                    f"bytes; rebuild cannot restore them",
                    lost_bytes=lost_total,
                )
        if self._stalled:
            # A new failure changes the live-target landscape; retry.
            self._requeue_stalled()
        self._mark_timeline()
        self._kick()

    def _on_restore(self, server_id: int) -> None:
        """restore_server hook: backfill placements homed on the rejoiner."""
        self._integrate()
        homed = [
            Placement(ns, region, s, copy)
            for (ns, region, s, copy) in sorted(self.pfs.replica_overrides)
            if self._natural_home(Placement(ns, region, s, copy)) == server_id
        ]
        if homed:
            batch_id = self._open_batch("restore")
            for placement in homed:
                # Redundancy is already full (the override location is
                # live); the backfill moves data home without an at-risk
                # window of its own.
                self._enqueue(placement, 0, batch_id)
            if not self._batches[batch_id].remaining:
                del self._batches[batch_id]
        if self._stalled:
            self._requeue_stalled()
        self._mark_timeline()
        self._kick()

    def _requeue_stalled(self) -> None:
        stalled, self._stalled = self._stalled, []
        for placement in stalled:
            if placement in self._queued:
                self._queue.append(placement)

    # -- the worker ---------------------------------------------------------

    def _kick(self) -> None:
        if self._worker is None and self._queue:
            sim = self.pfs.sim
            self._idle = sim.event()
            self._worker = sim.process(self._run(), name="rebuild")

    def _run(self) -> Generator:
        while self._queue:
            placement = self._queue.popleft()
            if placement not in self._queued:
                continue
            yield from self._rebuild_placement(placement)
        self._worker = None
        self._integrate()
        if self._idle is not None and not self._idle.triggered:
            self._idle.succeed()

    def _journal(self, method: str, placement: Placement, **kwargs) -> None:
        """Journal a rebuild record through the MDS WAL, if reachable.

        Shadow namespaces (unregistered) and a fully dark metadata cluster
        skip the record — rebuild must restore redundancy even while the
        MDS is recovering; the commit's override map is re-journaled by the
        next committed move.
        """
        match = _EXTENT_NS.match(placement.extent_ns)
        if match is None:
            return
        record = getattr(self.pfs.mds, f"record_rebuild_{method}", None)
        if record is None:
            return
        try:
            record(
                match.group("name"),
                int(match.group("generation")),
                placement.region_id,
                placement.server,
                placement.copy,
                **kwargs,
            )
        except (FileNotFoundError, MetadataUnavailable):
            return

    def _rebuild_placement(self, placement: Placement) -> Generator:
        pfs = self.pfs
        sim = pfs.sim
        copies = self._column_copies(placement)
        if copies == 0:
            # The file is gone or relaid out: the generation's extents are
            # garbage, not missing redundancy.
            self._resolve(placement, restored=True)
            return
        ranges = self._column_ranges(placement, copies)
        chosen = self._pick_target(placement, copies)
        if chosen is None:
            # No live server can take the copy right now; park it until the
            # next failure/restore event changes the landscape.
            self._stalled.append(placement)
            return
        target, target_ns, natural = chosen
        override_key = (
            placement.extent_ns,
            placement.region_id,
            placement.server,
            placement.copy,
        )
        # Where the placement resolves *before* this move commits — the old
        # extent is retired on success (exclusive namespaces only; a shared
        # mirror bucket still backs sibling columns).
        old = self._copy_extent(placement, placement.copy)
        source = self._live_source(placement, copies, exclude=target)
        if source is None:
            if any(size > 0 for _, size in ranges):
                lost = sum(size for _, size in ranges)
                self._record_loss(placement, lost)
                self._resolve(placement, restored=False)
                self._mark_timeline()
                if self.fail_on_loss:
                    raise DataLossError(
                        f"last copy of {placement.extent_ns} region "
                        f"{placement.region_id} died before rebuild reached it",
                        lost_bytes=lost,
                    )
                return
            # Nothing written: re-creating the (empty) placement is free.
            source = None
        self._journal("begin", placement, target=target)
        target_server = pfs.servers[target]
        target_base = pfs._extent_base(target_ns, placement.region_id, target)
        target_checks = target_server.checksums
        todo = ranges
        if target_checks is not None and todo:
            existing = [
                (offset - target_base, size)
                for offset, size in written_runs(
                    target_checks, target_base, pfs.EXTENT_SPACING
                )
            ]
            # Never clobber bytes already durable at the target (foreground
            # writes that landed after a rejoin are newer than any copy).
            todo = _subtract_runs(todo, existing)
        copied = 0
        if source is not None:
            source_id, source_base = source
            source_server = pfs.servers[source_id]
            tracer = sim.tracer
            for rel_offset, size in todo:
                cursor = rel_offset
                end = rel_offset + size
                while cursor < end:
                    step = min(self.chunk_size, end - cursor)
                    chunk_started = sim.now
                    try:
                        yield from source_server.serve(
                            OpType.READ, source_base + cursor, step
                        )
                        yield from target_server.serve(
                            OpType.WRITE, target_base + cursor, step
                        )
                    except ServerUnavailable:
                        # Source or target died mid-copy: journal the abort,
                        # retire the partial target extent if it is ours
                        # alone, and requeue — the next attempt re-selects
                        # live endpoints (or accounts the loss).
                        self._journal("abort", placement)
                        self.aborted_copies += 1
                        self._abandon_partial(placement, target, target_ns, target_base)
                        if placement in self._queued:
                            self._queue.append(placement)
                        return
                    copied += step
                    self.chunks += 1
                    if tracer is not None:
                        tracer.record(
                            chunk_started,
                            sim.now - chunk_started,
                            target_server.name,
                            "write",
                            target_base + cursor,
                            step,
                            "rebuild",
                        )
                    cursor += step
                    idle = duty_cycle_idle(sim.now - chunk_started, self.duty_cycle)
                    if idle > 0:
                        yield sim.timeout(idle)
        # Commit: swap the placement's location in one atomic (journaled)
        # step, then retire the old extent if the placement owned it alone.
        self._journal("commit", placement, target=target, natural=natural)
        if natural:
            pfs.replica_overrides.pop(override_key, None)
        else:
            pfs.replica_overrides[override_key] = target
        if old is not None:
            old_server, _ = old
            if old_server != target:
                self._retire_extent(placement, old_server)
        self._integrate()
        self.placements_rebuilt += 1
        self.bytes_rebuilt += copied
        self._resolve(placement, restored=True)
        self._mark_timeline()

    def _retire_extent(self, placement: Placement, server_id: int) -> None:
        """Drop the placement's extent on ``server_id`` if it owns it alone."""
        pfs = self.pfs
        for ns in (
            f"{placement.extent_ns}~r{placement.copy}~b{placement.server}",
            placement.extent_ns if placement.copy == 0 else None,
        ):
            if ns is None:
                continue
            base = pfs._extent_bases.pop((ns, placement.region_id, server_id), None)
            if base is not None:
                checks = pfs.servers[server_id].checksums
                if checks is not None:
                    checks.discard_range(base, pfs.EXTENT_SPACING)

    def _abandon_partial(
        self, placement: Placement, target: int, target_ns: str, target_base: int
    ) -> None:
        """Retire a half-copied target extent (exclusive namespaces only)."""
        if _REPLICA_NS.match(target_ns) is not None and _REBUILT_NS.match(target_ns) is None:
            # A shared mirror bucket also backs sibling columns; the partial
            # bytes are simply overwritten by the retry.
            return
        if self.pfs._extent_bases.pop((target_ns, placement.region_id, target), None) is not None:
            checks = self.pfs.servers[target].checksums
            if checks is not None:
                checks.discard_range(target_base, self.pfs.EXTENT_SPACING)

    # -- draining & reporting ----------------------------------------------

    @property
    def pending(self) -> int:
        """Placements still awaiting rebuild (queued or stalled)."""
        return len(self._queued)

    @property
    def active(self) -> bool:
        return self._worker is not None

    def drain(self) -> Generator:
        """DES generator: wait until the work queue is empty and idle.

        Stalled placements (no live target anywhere) do not block the drain
        — they can only move when a future fault event changes the cluster,
        and a drain is the end of the run.
        """
        while self._worker is not None:
            yield self._idle
        self._integrate()
        return self.stats()

    def counters(self) -> dict[str, int | float]:
        """Flat numeric snapshot exported as ``rebuild.*`` metrics."""
        return {
            "placements_rebuilt": self.placements_rebuilt,
            "bytes_rebuilt": self.bytes_rebuilt,
            "chunks": self.chunks,
            "aborted_copies": self.aborted_copies,
            "pending": self.pending,
            "data_loss_events": self.data_loss_events,
            "data_lost_bytes": self.data_lost_bytes,
            "at_risk_bytes": self._at_risk_total,
            "at_risk_bytes_peak": self.at_risk_peak,
            "exposure_seconds": self.exposure_seconds,
            "crash_batches": self.crash_batches,
            "restore_batches": self.restore_batches,
        }

    def stats(self) -> DurabilityStats:
        """Picklable end-of-run summary (integrates exposure to now)."""
        self._integrate()
        quorum = self.pfs.quorum_stats
        return DurabilityStats(
            regions_tracked=len(self._regions_seen),
            regions_degraded_final=sum(
                1 for missing in self._missing_by_region.values() if missing
            ),
            regions_lost=len(self._zero_regions),
            placements_rebuilt=self.placements_rebuilt,
            bytes_rebuilt=self.bytes_rebuilt,
            chunks=self.chunks,
            data_loss_events=self.data_loss_events,
            data_lost_bytes=self.data_lost_bytes,
            at_risk_bytes_peak=self.at_risk_peak,
            at_risk_bytes_final=self._at_risk_total,
            exposure_seconds=self.exposure_seconds,
            exposure_byte_seconds=self.exposure_byte_seconds,
            crash_batches=self.crash_batches,
            restore_batches=self.restore_batches,
            mttr_samples=tuple(self.mttr_samples),
            quorum_acks=quorum["acks"],
            trailing_mirrors=quorum["trailing_mirrors"],
            quorum_window_failures=quorum["window_failures"],
            timeline=tuple(self._timeline),
        )


def quorum_only_stats(pfs: ParallelFileSystem) -> DurabilityStats:
    """Durability summary for a quorum-writes run with no rebuild manager."""
    quorum = pfs.quorum_stats
    return DurabilityStats(
        quorum_acks=quorum["acks"],
        trailing_mirrors=quorum["trailing_mirrors"],
        quorum_window_failures=quorum["window_failures"],
    )


def _subtract_runs(
    runs: list[tuple[int, int]], existing: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Interval subtraction: parts of ``runs`` not covered by ``existing``."""
    if not existing:
        return runs
    out: list[tuple[int, int]] = []
    bounds = sorted(existing)
    for offset, size in runs:
        cursor = offset
        end = offset + size
        for b_off, b_size in bounds:
            b_end = b_off + b_size
            if b_end <= cursor or b_off >= end:
                continue
            if b_off > cursor:
                out.append((cursor, b_off - cursor))
            cursor = max(cursor, b_end)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end - cursor))
    return out
