"""On-line data layout and migration (the paper's second future-work item).

Sec. V: "Another direction is to explore on-line data layout and data
migration methods to make heterogeneous I/O systems more intelligent and
efficient."

Static HARL plans once, from a profiling trace. When the same byte range's
access pattern changes *over time* (temporal phases), the static plan goes
stale — region division is spatial and cannot separate overlapping phases.
This package closes the loop at runtime:

- :class:`~repro.online.monitor.WorkloadMonitor` keeps a sliding window of
  recent requests and detects drift in the request-size / op-mix signature
  relative to the signature the current layout was planned for;
- :class:`~repro.online.migration.RegionMigrator` moves a file's existing
  bytes from the old layout to a new one through the ordinary PFS data
  path, optionally rate-limited so migration does not starve foreground I/O;
- :class:`~repro.online.controller.OnlineHARLController` is a DES process
  that periodically checks the monitor, replans with the ordinary HARL
  planner on the recent window, swaps the file's layout, and triggers
  migration;
- :class:`~repro.online.scrub.Scrubber` is the background half of the
  integrity story (DESIGN.md §11): it sweeps allocated extents, re-reads
  written stripe units through the ordinary data path, and repairs checksum
  mismatches from replica copies, rate-limited by the same ``duty_cycle``
  mechanism as the migrator;
- :class:`~repro.online.rebuild.RebuildManager` restores *redundancy* after
  permanent server loss (DESIGN.md §16): it re-replicates the dead server's
  placements from surviving copies onto class-aware targets, backfills
  rejoining servers, and accounts bytes-at-risk exposure windows and MTTR —
  throttled by the shared :mod:`~repro.online.pacing` duty-cycle discipline.
"""

from repro.online.controller import OnlineHARLController, run_workload_online
from repro.online.migration import MigrationAborted, MigrationStats, RegionMigrator
from repro.online.monitor import DriftReport, WorkloadMonitor
from repro.online.rebuild import (
    DataLossError,
    DurabilityStats,
    RebuildConfig,
    RebuildManager,
)
from repro.online.scrub import ScrubReport, Scrubber

__all__ = [
    "DataLossError",
    "DriftReport",
    "DurabilityStats",
    "MigrationAborted",
    "MigrationStats",
    "OnlineHARLController",
    "RebuildConfig",
    "RebuildManager",
    "RegionMigrator",
    "ScrubReport",
    "Scrubber",
    "WorkloadMonitor",
    "run_workload_online",
]
