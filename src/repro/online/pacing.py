"""Shared pacing discipline for background maintenance traffic.

The scrubber, the region migrator, and the rebuild manager all move bytes
through the ordinary server data path — contending with foreground I/O on
the same disk and NIC queues — and all throttle themselves the same way: a
``duty_cycle`` in (0, 1] bounds the fraction of wall time the background
job may keep a device busy, by following each chunk of real work with a
proportional idle gap. This module is that discipline, factored out so the
three agents cannot drift apart:

- :func:`check_pacing` — the common constructor validation;
- :func:`duty_cycle_idle` — the idle gap owed after ``busy`` seconds of
  work (0.0 at full duty, ``busy * (1 - d) / d`` below it);
- :func:`written_runs` — contiguous written byte runs inside one extent,
  derived from the server's checksum tags: the unit of work every sweep
  and copy loop iterates.
"""

from __future__ import annotations


def check_pacing(chunk_size: int, duty_cycle: float) -> None:
    """Validate the (chunk_size, duty_cycle) pair every paced agent takes."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if not (0 < duty_cycle <= 1):
        raise ValueError(f"duty_cycle must be in (0, 1], got {duty_cycle}")


def duty_cycle_idle(busy: float, duty_cycle: float) -> float:
    """Idle seconds owed after ``busy`` seconds of work at ``duty_cycle``.

    At full duty (1.0) the gap is exactly 0.0 — no timeout event is ever
    scheduled, keeping full-duty runs event-identical to unpaced ones.
    """
    if duty_cycle >= 1.0:
        return 0.0
    return busy * (1.0 - duty_cycle) / duty_cycle


def written_runs(checks, base: int, spacing: int) -> list[tuple[int, int]]:
    """Contiguous ``(offset, size)`` runs of written bytes inside one extent.

    ``checks`` is the server's :class:`~repro.pfs.integrity.ExtentChecksums`;
    ``base`` the extent's physical base and ``spacing`` the per-extent window
    (``ParallelFileSystem.EXTENT_SPACING``). Offsets are physical (absolute
    on the device), block-aligned, sorted, and coalesced.
    """
    block_size = checks.block_size
    runs: list[tuple[int, int]] = []
    for block in checks.written_blocks():
        offset = block * block_size
        if not (base <= offset < base + spacing):
            continue
        if runs and runs[-1][0] + runs[-1][1] == offset:
            runs[-1] = (runs[-1][0], runs[-1][1] + block_size)
        else:
            runs.append((offset, block_size))
    return runs
