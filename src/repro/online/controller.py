"""The online HARL control loop.

A DES process wakes every ``check_interval`` simulated seconds, drains new
records from the file's trace collector into the workload monitor, and —
when the monitor reports drift — replans with the ordinary HARL planner on
the recent window, swaps the file's layout generation, and migrates the
already-written ranges whose striping changed. Calibration is refreshed per
replan at the window's mean request size, mirroring the paper's
per-pattern parameter measurement.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass, field

from repro.core.planner import HARLPlanner
from repro.middleware.iosig import TraceCollector
from repro.middleware.mpi_sim import SimMPI
from repro.middleware.mpiio import MPIIOFile
from repro.online.migration import (  # noqa: F401 (MigrationStats re-exported)
    MigrationAborted,
    MigrationStats,
    RegionMigrator,
    changed_ranges,
)
from repro.online.monitor import WorkloadMonitor
from repro.pfs.filesystem import ParallelFileSystem, PFSFile
from repro.pfs.layout import LayoutPolicy, RegionLevelLayout
from repro.simulate.engine import Process
from repro.util.units import MiB


@dataclass
class ReplanEvent:
    """One layout change performed by the controller."""

    at_time: float
    size_change: float
    op_mix_change: float
    new_layout: str
    migration: MigrationStats | None = None
    #: True when the migration pass died (MigrationAborted); the shadow
    #: extents were released and the generation swap was never committed.
    aborted: bool = False


@dataclass
class OnlineReport:
    """What the controller did during a run."""

    checks: int = 0
    replans: list[ReplanEvent] = field(default_factory=list)

    @property
    def bytes_migrated(self) -> int:
        return sum(e.migration.bytes_moved for e in self.replans if e.migration)

    def summary(self) -> str:
        lines = [f"{self.checks} checks, {len(self.replans)} replans, "
                 f"{self.bytes_migrated} bytes migrated"]
        for event in self.replans:
            migration = (
                f", migrated {event.migration.bytes_moved}B in {event.migration.elapsed:.4f}s"
                if event.migration
                else ""
            )
            lines.append(
                f"  t={event.at_time:.4f}s: drift(size {event.size_change:.0%}, "
                f"ops {event.op_mix_change:.0%}) -> {event.new_layout}{migration}"
            )
        return "\n".join(lines)


class OnlineHARLController:
    """Watches one file's traffic and keeps its layout matched to it."""

    def __init__(
        self,
        pfs: ParallelFileSystem,
        handle: PFSFile,
        collector: TraceCollector,
        planner_factory: Callable[[float], HARLPlanner],
        monitor: WorkloadMonitor | None = None,
        check_interval: float = 0.005,
        migrate: bool = True,
        migration_chunk: int = 4 * MiB,
        migration_duty_cycle: float = 1.0,
    ):
        if check_interval <= 0:
            raise ValueError(f"check_interval must be > 0, got {check_interval}")
        self.pfs = pfs
        self.handle = handle
        self.collector = collector
        self.planner_factory = planner_factory
        self.monitor = monitor or WorkloadMonitor()
        self.check_interval = check_interval
        self.migrate = migrate
        self.migrator = RegionMigrator(
            pfs, handle.name, chunk_size=migration_chunk, duty_cycle=migration_duty_cycle
        )
        self.report = OnlineReport()
        self._consumed = 0
        self._observed_extent = 0
        self._migration_in_flight = False
        self._pending_drift = None  # Drift seen; waiting for a clean window.

    def start(self) -> Process:
        """Spawn the control loop in the filesystem's simulator."""
        return self.pfs.sim.process(self._run(), name=f"online-harl[{self.handle.name}]")

    def _drain_collector(self) -> None:
        records = self.collector.records
        fd = self.collector.fd_for(self.handle.name)
        for record in records[self._consumed:]:
            if record.fd == fd:
                self.monitor.observe(record)
                self._observed_extent = max(self._observed_extent, record.offset + record.size)
        self._consumed = len(records)

    def _run(self) -> Generator:
        sim = self.pfs.sim
        while True:
            yield sim.timeout(self.check_interval)
            self._drain_collector()
            self.report.checks += 1
            if self._migration_in_flight:
                continue  # Let the current migration settle before replanning.
            if self._pending_drift is not None:
                # Quarantine: wait until the window refills with purely
                # post-drift traffic, then plan from that clean sample.
                if self.monitor.window_fill >= self.monitor.min_window_fill:
                    drift, self._pending_drift = self._pending_drift, None
                    self._replan(drift)
                continue
            drift = self.monitor.check_drift()
            if not drift.drifted:
                continue
            self._pending_drift = drift
            self.monitor.reset_window()

    def _replan(self, drift) -> None:
        # Calibration hint from the *refilled* (post-quarantine) window —
        # the detection-time report still mixes pre-drift traffic.
        current_mean = self.monitor.signature().mean_size
        planner = self.planner_factory(max(1.0, current_mean))
        rst = planner.plan(self.monitor.window_records())
        new_layout = RegionLevelLayout(rst)
        old_layout = self.handle.layout
        old_generation = self.handle.layout_generation
        # Two-phase generation swap (DESIGN.md §11): journal the intent
        # before the data path switches, commit only once the copy lands.
        # A crash anywhere in between recovers to the old generation.
        mds = self.pfs.mds
        name = self.handle.name
        mds.begin_migration(name, new_layout, old_generation + 1)
        new_generation = self.handle.relayout(new_layout)
        event = ReplanEvent(
            at_time=self.pfs.sim.now,
            size_change=drift.size_change,
            op_mix_change=drift.op_mix_change,
            new_layout=new_layout.describe(),
        )
        self.report.replans.append(event)
        ranges = (
            changed_ranges(old_layout, new_layout, self._observed_extent)
            if self.migrate and self._observed_extent > 0
            else []
        )
        if ranges:
            # Migration runs in the background, competing with foreground
            # I/O on the server queues; monitoring continues meanwhile.
            # The stats object is attached up front so a pass still in
            # flight when the run ends reports its partial volume.
            self._migration_in_flight = True
            event.migration = MigrationStats()

            def migration_proc() -> Generator:
                try:
                    yield from self.migrator.migrate(
                        old_layout,
                        old_generation,
                        new_layout,
                        new_generation,
                        ranges,
                        stats=event.migration,
                    )
                except MigrationAborted:
                    event.aborted = True
                    mds.abort_migration(name)
                else:
                    mds.commit_migration(name)
                self._migration_in_flight = False

            self.pfs.sim.process(migration_proc(), name=f"migrate[{self.handle.name}]")
        else:
            # Nothing to move: the swap is complete the moment it happens.
            mds.commit_migration(name)
        self.monitor.rebaseline()


def run_workload_online(
    testbed,
    workload,
    initial_layout: LayoutPolicy,
    layout_name: str = "online-HARL",
    check_interval: float = 0.005,
    monitor_kwargs: dict | None = None,
    migrate: bool = True,
    migration_duty_cycle: float = 1.0,
    planner_kwargs: dict | None = None,
    file_name: str = "shared.dat",
    baseline_trace=None,
):
    """Run a workload with the online controller attached.

    Returns ``(RunResult, OnlineReport)``. The counterpart of
    :func:`repro.experiments.harness.run_workload` for the adaptive mode.
    ``baseline_trace`` seeds the drift baseline with the profiling trace the
    *initial* layout was planned from, so the controller replans only when
    the live workload departs from that profile.
    """
    from repro.experiments.harness import RunResult, workload_bytes, workload_processes
    from repro.simulate.engine import Simulator

    sim = Simulator()
    pfs = testbed.build(sim)
    world = SimMPI(sim, workload_processes(workload), network=pfs.network)
    collector = TraceCollector(sim)
    mf = MPIIOFile.open(world.comm, pfs, file_name, initial_layout, collector=collector)

    def planner_factory(mean_size: float) -> HARLPlanner:
        params = testbed.parameters(request_hint=int(mean_size))
        return HARLPlanner(params, step=None, **(planner_kwargs or {}))

    monitor = WorkloadMonitor(**(monitor_kwargs or {}))
    if baseline_trace:
        monitor.baseline_from(list(baseline_trace))
    controller = OnlineHARLController(
        pfs,
        mf.handle,
        collector,
        planner_factory,
        monitor=monitor,
        check_interval=check_interval,
        migrate=migrate,
        migration_duty_cycle=migration_duty_cycle,
    )
    controller.start()
    done = world.spawn(workload.rank_program(mf))
    sim.run(done)
    result = RunResult(
        layout_name=layout_name,
        makespan=sim.now,
        total_bytes=workload_bytes(workload),
        server_busy=pfs.server_busy_times(),
    )
    return result, controller.report
