"""Sliding-window workload monitoring and drift detection.

The monitor consumes the same records the IOSIG collector produces. Its
drift signal compares the *current window's* signature — mean request size
and read fraction — to the signature captured when the active layout was
planned. Mean request size is the natural statistic: it is exactly what
Algorithm 1 keys regions on and what bounds Algorithm 2's grid, so when it
moves materially, the optimal stripe pair has moved too.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.workloads.traces import TraceRecord, sort_trace


@dataclass(frozen=True)
class WindowSignature:
    """Summary of a request window."""

    n_requests: int
    mean_size: float
    read_fraction: float


@dataclass(frozen=True)
class DriftReport:
    """Outcome of a drift check."""

    drifted: bool
    size_change: float
    op_mix_change: float
    current: WindowSignature
    baseline: WindowSignature | None


class WorkloadMonitor:
    """Sliding window over traced requests with drift detection.

    Args:
        window: number of most-recent requests the window holds.
        size_drift_threshold: relative mean-request-size change that counts
            as drift (0.5 = ±50%).
        op_drift_threshold: absolute read-fraction change that counts as
            drift.
        min_window_fill: fraction of the window that must be populated with
            *new* requests since the last (re)plan before drift may fire —
            prevents replanning off a handful of samples.
    """

    def __init__(
        self,
        window: int = 256,
        size_drift_threshold: float = 0.5,
        op_drift_threshold: float = 0.3,
        min_window_fill: float = 0.5,
    ):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if size_drift_threshold <= 0 or op_drift_threshold <= 0:
            raise ValueError("drift thresholds must be > 0")
        if not (0 < min_window_fill <= 1):
            raise ValueError(f"min_window_fill must be in (0, 1], got {min_window_fill}")
        self.window_size = window
        self.size_drift_threshold = size_drift_threshold
        self.op_drift_threshold = op_drift_threshold
        self.min_window_fill = min_window_fill
        self._window: deque[TraceRecord] = deque(maxlen=window)
        self._baseline: WindowSignature | None = None
        self._since_baseline = 0
        self.records_observed = 0

    def observe(self, record: TraceRecord) -> None:
        """Feed one traced request."""
        self._window.append(record)
        self._since_baseline += 1
        self.records_observed += 1

    def observe_all(self, records: list[TraceRecord]) -> None:
        """Feed a batch of records (e.g. a collector's tail)."""
        for record in records:
            self.observe(record)

    def signature(self) -> WindowSignature:
        """Signature of the current window (zeros when empty)."""
        n = len(self._window)
        if n == 0:
            return WindowSignature(n_requests=0, mean_size=0.0, read_fraction=0.0)
        total = sum(r.size for r in self._window)
        reads = sum(1 for r in self._window if r.op.value == "read")
        return WindowSignature(
            n_requests=n, mean_size=total / n, read_fraction=reads / n
        )

    def rebaseline(self) -> WindowSignature:
        """Capture the current signature as the planned-for baseline."""
        self._baseline = self.signature()
        self._since_baseline = 0
        return self._baseline

    def baseline_from(self, records: list[TraceRecord]) -> WindowSignature:
        """Set the baseline from an external trace (the profiling run the
        *current* layout was planned from), without touching the window."""
        if not records:
            raise ValueError("cannot baseline from an empty trace")
        total = sum(r.size for r in records)
        reads = sum(1 for r in records if r.op.value == "read")
        self._baseline = WindowSignature(
            n_requests=len(records),
            mean_size=total / len(records),
            read_fraction=reads / len(records),
        )
        self._since_baseline = 0
        return self._baseline

    def check_drift(self) -> DriftReport:
        """Compare the current window against the baseline."""
        current = self.signature()
        baseline = self._baseline
        if baseline is None or baseline.n_requests == 0:
            # No baseline yet: anything non-trivial counts as needing a plan.
            enough = current.n_requests >= self.window_size * self.min_window_fill
            return DriftReport(
                drifted=enough, size_change=0.0, op_mix_change=0.0,
                current=current, baseline=baseline,
            )
        if self._since_baseline < self.window_size * self.min_window_fill:
            return DriftReport(
                drifted=False, size_change=0.0, op_mix_change=0.0,
                current=current, baseline=baseline,
            )
        size_change = (
            abs(current.mean_size - baseline.mean_size) / baseline.mean_size
            if baseline.mean_size > 0
            else 0.0
        )
        op_change = abs(current.read_fraction - baseline.read_fraction)
        drifted = (
            size_change > self.size_drift_threshold or op_change > self.op_drift_threshold
        )
        return DriftReport(
            drifted=drifted,
            size_change=size_change,
            op_mix_change=op_change,
            current=current,
            baseline=baseline,
        )

    @property
    def window_fill(self) -> float:
        """Fraction of the window currently populated."""
        return len(self._window) / self.window_size

    def reset_window(self) -> None:
        """Drop the window's history (drift quarantine: after a detected
        phase change, the stale pre-drift records must not pollute the
        replan; the controller waits for the window to refill with
        post-drift traffic before planning)."""
        self._window.clear()
        self._since_baseline = 0

    def window_records(self) -> list[TraceRecord]:
        """The window's records, offset-sorted (planner input order)."""
        return sort_trace(self._window)
