"""Background scrubbing: sweep stored data, verify checksums, self-heal.

Read-path repair (:meth:`PFSFile._serve_repairing`) only heals corruption
that foreground traffic happens to touch — and only on *primary* copies.
A :class:`Scrubber` is the background half of the integrity story: a DES
process that walks every allocated extent (primaries and replica copies),
re-reads the written stripe units through the ordinary server data path,
and repairs any mismatch from the extent's counterpart copy. Scrub and
repair traffic therefore contends with foreground I/O on the same disk and
NIC queues — exactly the background-traffic interference the
straggler-aware scheduling literature (Tavakoli et al., arXiv:1805.06156)
insists must be modeled, and the same ``duty_cycle`` rate-limiting knob as
:class:`~repro.online.migration.RegionMigrator` keeps it off the
foreground's critical path.

A mismatch with no clean counterpart (unreplicated region, or every copy
poisoned) is counted ``unrepairable`` and reported — the scrubber never
raises out of its sweep, and never leaves a detection unaccounted:
``IntegrityStats.silent_corruptions`` stays 0.
"""

from __future__ import annotations

import re
from collections.abc import Generator
from dataclasses import dataclass

from repro.devices.base import OpType
from repro.online.pacing import check_pacing, duty_cycle_idle, written_runs
from repro.pfs.filesystem import ParallelFileSystem
from repro.pfs.health import ServerUnavailable
from repro.pfs.integrity import IntegrityError
from repro.simulate.engine import Process
from repro.util.units import MiB

_REPLICA_NS = re.compile(r"^(?P<base>.*)~r(?P<copy>[0-9]+)$")
#: Rebuilt-extent namespaces (``{ns}~r{copy}~b{config_server}``), installed
#: by :class:`repro.online.rebuild.RebuildManager`; the trailing ``~b``
#: keeps them out of the plain-replica regex above.
_REBUILT_NS = re.compile(r"^(?P<base>.*)~r(?P<copy>[0-9]+)~b(?P<src>[0-9]+)$")


@dataclass
class ScrubReport:
    """What one scrub sweep saw and did."""

    extents: int = 0
    chunks: int = 0
    bytes_scanned: int = 0
    mismatches: int = 0
    repaired: int = 0
    unrepairable: int = 0
    skipped_unavailable: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    def summary(self) -> str:
        return (
            f"scrub: {self.extents} extents, {self.bytes_scanned} bytes in "
            f"{self.elapsed:.4f}s; {self.mismatches} mismatches, "
            f"{self.repaired} repaired, {self.unrepairable} unrepairable"
        )


class Scrubber:
    """Sweeps allocated extents, verifying and repairing stored stripe units.

    Args:
        pfs: the filesystem to scrub; its integrity layer must be enabled
            (it is, whenever corruption faults or replicated layouts exist).
        chunk_size: bytes verified per read — one queued device pass each.
        duty_cycle: fraction of wall time the scrubber may keep a device
            busy, exactly as in :class:`~repro.online.migration.RegionMigrator`;
            below 1.0 each chunk is followed by a proportional idle gap.
    """

    def __init__(
        self,
        pfs: ParallelFileSystem,
        chunk_size: int = 4 * MiB,
        duty_cycle: float = 1.0,
    ):
        check_pacing(chunk_size, duty_cycle)
        self.pfs = pfs
        self.chunk_size = chunk_size
        self.duty_cycle = duty_cycle
        self.last_report: ScrubReport | None = None

    # -- counterpart resolution -------------------------------------------

    def _counterpart(self, namespace: str, region_id: int, server_id: int):
        """The (server_id, base) holding the other copy of an extent, or None.

        A replica extent's counterpart is its primary; a primary's is the
        first replica copy that exists. Resolution is pure bookkeeping
        (extent-table lookups) — the data movement still pays full I/O.
        """
        bases = self.pfs._extent_bases
        rebuilt = _REBUILT_NS.match(namespace)
        if rebuilt is not None:
            # A rebuild-installed placement: its logical identity is copy
            # ``copy`` of config-server ``src``'s column; the counterpart is
            # the first *other* copy of that column that exists.
            base_ns = rebuilt.group("base")
            own_copy = int(rebuilt.group("copy"))
            src = int(rebuilt.group("src"))
            for copy in range(self.pfs.n_servers + 1):
                if copy == own_copy:
                    continue
                target, ns = self.pfs.replica_extent(base_ns, region_id, src, copy)
                base = bases.get((ns, region_id, target))
                if base is not None:
                    return target, base
            return None
        match = _REPLICA_NS.match(namespace)
        if match is not None:
            base_ns = match.group("base")
            copy = int(match.group("copy"))
            for (ns, region, primary_id), base in bases.items():
                if (
                    ns == base_ns
                    and region == region_id
                    and self.pfs.replica_target(primary_id, copy) == server_id
                ):
                    return primary_id, base
            return None
        copy = 1
        while True:
            target, ns = self.pfs.replica_extent(namespace, region_id, server_id, copy)
            base = bases.get((ns, region_id, target))
            if base is not None:
                return target, base
            copy += 1
            if copy > self.pfs.n_servers:
                return None

    # -- sweeping ----------------------------------------------------------

    def _written_runs(self, checks, base: int) -> list[tuple[int, int]]:
        """Contiguous (offset, size) runs of written bytes inside one extent."""
        return written_runs(checks, base, self.pfs.EXTENT_SPACING)

    def sweep(self, report: ScrubReport | None = None) -> Generator:
        """DES generator: one full verification pass over every extent.

        Returns (as generator value) a :class:`ScrubReport`, also kept as
        :attr:`last_report`. Spawn with ``sim.process(scrubber.sweep())`` or
        drain inline with ``sim.run(sim.process(scrubber.sweep()))``.
        """
        sim = self.pfs.sim
        acct = self.pfs.integrity
        if acct is None:
            raise RuntimeError(
                "scrubbing needs integrity enabled (ParallelFileSystem.enable_integrity)"
            )
        if report is None:
            report = ScrubReport()
        self.last_report = report
        report.started_at = sim.now
        report.finished_at = sim.now
        # Snapshot the extent table: extents allocated mid-sweep are the
        # next sweep's problem, and sorting keys the deterministic order.
        extents = sorted(self.pfs._extent_bases.items())
        for (namespace, region_id, server_id), base in extents:
            server = self.pfs.servers[server_id]
            checks = server.checksums
            if checks is None or server.is_failed:
                continue
            report.extents += 1
            for offset, size in self._written_runs(checks, base):
                cursor = offset
                end = offset + size
                while cursor < end:
                    step = min(self.chunk_size, end - cursor)
                    chunk_started = sim.now
                    tracer = sim.tracer
                    try:
                        yield from server.serve(OpType.READ, cursor, step)
                    except IntegrityError:
                        report.mismatches += 1
                        # Eager resolution: stands as unrepairable unless the
                        # repair below downgrades it to repaired.
                        acct.unrepairable += 1
                        yield from self._repair(
                            server_id, cursor, step, namespace, region_id, base, report
                        )
                    except ServerUnavailable:
                        report.skipped_unavailable += 1
                        break
                    if tracer is not None:
                        tracer.record(
                            chunk_started,
                            sim.now - chunk_started,
                            server.name,
                            "read",
                            cursor,
                            step,
                            "scrub",
                        )
                    report.chunks += 1
                    report.bytes_scanned += step
                    cursor += step
                    idle = duty_cycle_idle(sim.now - chunk_started, self.duty_cycle)
                    if idle > 0:
                        yield sim.timeout(idle)
        report.finished_at = sim.now
        return report

    def _repair(
        self,
        server_id: int,
        offset: int,
        size: int,
        namespace: str,
        region_id: int,
        extent_base: int,
        report: ScrubReport,
    ) -> Generator:
        """Heal one mismatching chunk from its counterpart copy."""
        sim = self.pfs.sim
        acct = self.pfs.integrity
        server = self.pfs.servers[server_id]
        counterpart = self._counterpart(namespace, region_id, server_id)
        if counterpart is not None:
            source_id, source_base = counterpart
            source = self.pfs.servers[source_id]
            acct.replica_reads += 1
            started = sim.now
            try:
                # Re-read the clean copy, then rewrite the poisoned chunk —
                # both through the ordinary data path, contending with
                # foreground I/O like any other client.
                yield from source.serve(
                    OpType.READ, source_base + (offset - extent_base), size
                )
                yield from server.serve(OpType.WRITE, offset, size)
            except IntegrityError:
                # The counterpart is poisoned too: its own fresh detection
                # joins the original chunk's as unrepairable.
                acct.unrepairable += 1
                report.unrepairable += 1
                return
            except ServerUnavailable:
                report.unrepairable += 1
                return
            acct.unrepairable -= 1
            acct.repaired += 1
            report.repaired += 1
            tracer = sim.tracer
            if tracer is not None:
                tracer.record(
                    started, sim.now - started, server.name, "write", offset, size, "repair"
                )
            return
        report.unrepairable += 1  # no counterpart; sweep already counted it

    def start(self) -> Process:
        """Spawn one sweep in the filesystem's simulator; returns the Process."""
        return self.pfs.sim.process(self.sweep(), name="scrubber")
